/**
 * @file
 * Minimal open-addressing hash containers for simulator hot paths.
 *
 * Both containers here exist for one reason: the per-memory-op paths
 * (page-home lookup, chunk read-set membership) hit a hash table once per
 * simulated instruction, and std::unordered_* pays a node allocation plus a
 * pointer chase per probe. These tables are flat arrays with linear probing
 * and a multiplicative hash — one cache line per probe in the common case.
 *
 * They are deliberately narrow — insert and membership only, no erase —
 * because every current user is insert-only. Neither container is ever
 * iterated, so switching a caller from unordered_* to these cannot change
 * any observable ordering (simulation traces stay byte-identical).
 */

#ifndef SBULK_SIM_FLAT_HASH_HH
#define SBULK_SIM_FLAT_HASH_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace sbulk
{

/** Fibonacci multiplicative hash of a 64-bit key into [0, 2^bits). */
inline std::size_t
flatHashIndex(std::uint64_t key, unsigned shift)
{
    return std::size_t((key * 0x9e3779b97f4a7c15ull) >> shift);
}

/**
 * Insert-only Addr -> NodeId map (open addressing, linear probing).
 *
 * Empty slots are marked by value == kInvalidNode, which no real mapping
 * uses (values are always < the node count). Grows at ~70% load.
 */
class AddrNodeMap
{
  public:
    /** Value for @p key, inserting @p fallback if absent. */
    NodeId
    findOrInsert(Addr key, NodeId value_if_absent)
    {
        SBULK_ASSERT(value_if_absent != kInvalidNode);
        if (_size * 10 >= capacity() * 7)
            grow();
        std::size_t i = flatHashIndex(key, _shift);
        while (_slots[i].value != kInvalidNode) {
            if (_slots[i].key == key)
                return _slots[i].value;
            i = (i + 1) & (capacity() - 1);
        }
        _slots[i] = Entry{key, value_if_absent};
        ++_size;
        return value_if_absent;
    }

    /** Value for @p key, or kInvalidNode if absent. */
    NodeId
    find(Addr key) const
    {
        if (_size == 0)
            return kInvalidNode;
        std::size_t i = flatHashIndex(key, _shift);
        while (_slots[i].value != kInvalidNode) {
            if (_slots[i].key == key)
                return _slots[i].value;
            i = (i + 1) & (capacity() - 1);
        }
        return kInvalidNode;
    }

    std::size_t size() const { return _size; }

  private:
    struct Entry
    {
        Addr key = 0;
        NodeId value = kInvalidNode;
    };

    std::size_t capacity() const { return _slots.size(); }

    void
    grow()
    {
        const std::size_t cap = _slots.empty() ? 64 : capacity() * 2;
        std::vector<Entry> old = std::move(_slots);
        _slots.assign(cap, Entry{});
        _shift = 64;
        for (std::size_t c = cap; c > 1; c >>= 1)
            --_shift;
        for (const Entry& e : old) {
            if (e.value == kInvalidNode)
                continue;
            std::size_t i = flatHashIndex(e.key, _shift);
            while (_slots[i].value != kInvalidNode)
                i = (i + 1) & (cap - 1);
            _slots[i] = e;
        }
    }

    std::vector<Entry> _slots;
    std::size_t _size = 0;
    unsigned _shift = 64;
};

/**
 * Insert-only Addr set with O(1) clear (open addressing, linear probing).
 *
 * Slots carry a generation stamp instead of being wiped: clear() bumps the
 * generation, instantly invalidating every slot. This matters because the
 * user (the chunk read set) is cleared once per chunk, and a memset-style
 * clear would cost proportional to the high-water capacity every time.
 */
class AddrSet
{
  public:
    /** Add @p key; returns true if it was newly inserted. */
    bool
    insert(Addr key)
    {
        if (_size * 10 >= capacity() * 7)
            grow();
        std::size_t i = flatHashIndex(key, _shift);
        while (_slots[i].stamp == _stamp) {
            if (_slots[i].key == key)
                return false;
            i = (i + 1) & (capacity() - 1);
        }
        _slots[i] = Entry{key, _stamp};
        ++_size;
        return true;
    }

    bool
    contains(Addr key) const
    {
        if (_size == 0)
            return false;
        std::size_t i = flatHashIndex(key, _shift);
        while (_slots[i].stamp == _stamp) {
            if (_slots[i].key == key)
                return true;
            i = (i + 1) & (capacity() - 1);
        }
        return false;
    }

    void
    clear()
    {
        ++_stamp;
        _size = 0;
    }

    std::size_t size() const { return _size; }
    bool empty() const { return _size == 0; }

  private:
    struct Entry
    {
        Addr key = 0;
        std::uint64_t stamp = 0;
    };

    std::size_t capacity() const { return _slots.size(); }

    void
    grow()
    {
        const std::size_t cap = _slots.empty() ? 64 : capacity() * 2;
        std::vector<Entry> old = std::move(_slots);
        // Fresh slots carry stamp 0; restart generations at 1 so they all
        // read as empty.
        _slots.assign(cap, Entry{});
        const std::uint64_t oldStamp = _stamp;
        _stamp = 1;
        _shift = 64;
        for (std::size_t c = cap; c > 1; c >>= 1)
            --_shift;
        for (const Entry& e : old) {
            if (e.stamp != oldStamp)
                continue;
            std::size_t i = flatHashIndex(e.key, _shift);
            while (_slots[i].stamp == _stamp)
                i = (i + 1) & (cap - 1);
            _slots[i] = Entry{e.key, _stamp};
        }
    }

    std::vector<Entry> _slots;
    std::size_t _size = 0;
    std::uint64_t _stamp = 1;
    unsigned _shift = 64;
};

} // namespace sbulk

#endif // SBULK_SIM_FLAT_HASH_HH
