#include "sim/shard.hh"

#include <ctime>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>

namespace sbulk
{

namespace
{

thread_local std::uint32_t tls_shard = 0;

/** RAII shard identity for the worker's lifetime on this thread. */
struct ShardScope
{
    explicit ShardScope(std::uint32_t s) { tls_shard = s; }
    ~ShardScope() { tls_shard = 0; }
};

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/** CPU seconds consumed by the calling thread (CLOCK_THREAD_CPUTIME_ID):
 *  what a busy interval costs on a dedicated core, however many sibling
 *  shard threads preempt it on this host. */
double
threadCpuSec()
{
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return double(ts.tv_sec) + 1e-9 * double(ts.tv_nsec);
}

Tick
satAdd(Tick a, Tick b)
{
    return a >= kMaxTick - b ? kMaxTick : a + b;
}

/**
 * Close the raw pairwise lookahead matrix over multi-shard forwarding
 * paths (Floyd-Warshall), writing the cheapest feedback cycle through
 * each shard into the diagonal.
 *
 * Both refinements are load-bearing. The raw entries are minimum
 * distances between tile *sets*, which do not obey the triangle
 * inequality (a path i -> j -> s can undercut the direct i -> s bound
 * for elongated regions), so horizons must use path-closed distances.
 * And a shard's own sends can round-trip: an event it executes at t can
 * spawn work on a neighbour that replies by t + (cheapest cycle), so a
 * window may never extend past head + D[s][s] — without the diagonal
 * term a wide window executes events that causally follow messages
 * still in flight back to it.
 */
std::vector<Tick>
closeLookahead(std::vector<Tick> m, std::uint32_t S)
{
    SBULK_ASSERT(m.size() == std::size_t(S) * S,
                 "lookahead matrix must be shards x shards");
    for (std::uint32_t i = 0; i < S; ++i) {
        for (std::uint32_t j = 0; j < S; ++j)
            SBULK_ASSERT(i == j || m[std::size_t(i) * S + j] >= 1,
                         "pairwise lookahead %u->%u must be positive", i,
                         j);
        m[std::size_t(i) * S + i] = kMaxTick;
    }
    for (std::uint32_t k = 0; k < S; ++k)
        for (std::uint32_t i = 0; i < S; ++i) {
            const Tick ik = m[std::size_t(i) * S + k];
            if (i == k || ik == kMaxTick)
                continue;
            for (std::uint32_t j = 0; j < S; ++j) {
                if (j == k || m[std::size_t(k) * S + j] == kMaxTick)
                    continue;
                Tick& ij = m[std::size_t(i) * S + j];
                ij = std::min(ij, satAdd(ik, m[std::size_t(k) * S + j]));
            }
        }
    return m;
}

} // namespace

std::uint32_t
currentShard()
{
    return tls_shard;
}

// -- ShardPlan -----------------------------------------------------------

ShardPlan::ShardPlan(std::uint32_t tiles, std::uint32_t shards)
    : _shards(shards)
{
    SBULK_ASSERT(shards >= 1 && shards <= tiles,
                 "bad shard plan: %u shards over %u tiles", shards, tiles);
    _map.resize(tiles);
    const std::uint32_t base = tiles / shards;
    const std::uint32_t rem = tiles % shards;
    const std::uint32_t big = rem * (base + 1);
    for (std::uint32_t t = 0; t < tiles; ++t)
        _map[t] = t < big ? t / (base + 1) : rem + (t - big) / base;
    buildTileLists();
}

ShardPlan::ShardPlan(std::vector<std::uint32_t> map, std::uint32_t shards)
    : _shards(shards), _map(std::move(map))
{
    SBULK_ASSERT(shards >= 1 && shards <= _map.size(),
                 "bad shard plan: %u shards over %zu tiles", shards,
                 _map.size());
    for (std::uint32_t t = 0; t < _map.size(); ++t)
        SBULK_ASSERT(_map[t] < shards,
                     "shard map sends tile %u to shard %u (%u shards)", t,
                     _map[t], shards);
    buildTileLists();
}

void
ShardPlan::buildTileLists()
{
    _tilesOf.assign(_shards, {});
    for (std::uint32_t t = 0; t < _map.size(); ++t)
        _tilesOf[_map[t]].push_back(t);
    for (std::uint32_t s = 0; s < _shards; ++s)
        SBULK_ASSERT(!_tilesOf[s].empty(),
                     "shard map leaves shard %u with no tiles", s);
}

// -- Balanced partitioner ------------------------------------------------

std::vector<std::uint32_t>
balancedShardMap(const std::vector<std::uint64_t>& weights,
                 std::uint32_t width, std::uint32_t height,
                 std::uint32_t shards)
{
    const std::uint32_t tiles = width * height;
    SBULK_ASSERT(tiles > 0 && weights.size() == tiles,
                 "balancedShardMap: %zu weights for a %ux%u grid",
                 weights.size(), width, height);
    SBULK_ASSERT(shards >= 1 && shards <= tiles,
                 "balancedShardMap: %u shards over %u tiles", shards,
                 tiles);

    // Boustrophedon walk: consecutive tiles in the order are grid
    // neighbours, so contiguous bins stay spatially compact.
    std::vector<std::uint32_t> order;
    order.reserve(tiles);
    for (std::uint32_t y = 0; y < height; ++y)
        for (std::uint32_t i = 0; i < width; ++i)
            order.push_back(y * width +
                            ((y & 1) ? width - 1 - i : i));

    // Weight+1 so zero-weight tiles still spread across bins instead of
    // all piling into the last one.
    std::vector<std::uint64_t> wt(tiles);
    std::uint64_t total = 0, wmax = 0;
    for (std::uint32_t k = 0; k < tiles; ++k) {
        wt[k] = weights[order[k]] + 1;
        total += wt[k];
        wmax = std::max(wmax, wt[k]);
    }

    // Optimal contiguous split of the walk (the painter's-partition
    // problem): binary-search the smallest max-bin weight for which a
    // greedy left-to-right fill fits in <= `shards` nonempty bins. The
    // greedy check is exact for contiguous partitions, so the result is
    // the true optimum over all snake-order splits — strictly better
    // than any one-pass adaptive close rule, and equally deterministic.
    auto fits = [&](std::uint64_t cap) {
        std::uint32_t bins = 1;
        std::uint64_t binw = 0;
        for (std::uint32_t k = 0; k < tiles; ++k) {
            if (binw + wt[k] > cap) {
                ++bins;
                binw = 0;
            }
            binw += wt[k];
        }
        return bins <= shards;
    };
    std::uint64_t lo = std::max<std::uint64_t>(wmax, total / shards);
    std::uint64_t hi = total;
    while (lo < hi) {
        const std::uint64_t mid = lo + (hi - lo) / 2;
        if (fits(mid))
            hi = mid;
        else
            lo = mid + 1;
    }

    // Materialize the split at the optimal cap. The cap may need fewer
    // than `shards` bins; every shard must still own at least one tile,
    // so force a close whenever the remaining tiles are all spoken for.
    std::vector<std::uint32_t> map(tiles, 0);
    std::uint32_t s = 0;
    std::uint64_t binw = 0;
    for (std::uint32_t k = 0; k < tiles; ++k) {
        const std::uint32_t bins_after = shards - s - 1;
        const bool over = binw > 0 && binw + wt[k] > lo;
        const bool must_close = tiles - k == bins_after;
        if (bins_after > 0 && (over || must_close)) {
            ++s;
            binw = 0;
        }
        map[order[k]] = s;
        binw += wt[k];
    }
    return map;
}

// -- Shard-map text format -----------------------------------------------

std::string
formatShardMap(const std::vector<std::uint32_t>& map)
{
    std::string out;
    for (std::size_t i = 0; i < map.size();) {
        std::size_t j = i + 1;
        while (j < map.size() && map[j] == map[i])
            ++j;
        if (!out.empty())
            out += ' ';
        out += std::to_string(map[i]);
        if (j - i > 1) {
            out += 'x';
            out += std::to_string(j - i);
        }
        i = j;
    }
    return out;
}

bool
parseShardMap(std::istream& in, const std::string& name,
              std::uint32_t tiles, std::uint32_t shards,
              std::vector<std::uint32_t>& map_out, std::string* err)
{
    auto fail = [&](std::size_t line, const std::string& why) {
        if (err)
            *err = name + ":" + std::to_string(line) + ": " + why;
        return false;
    };

    std::vector<std::uint32_t> map;
    map.reserve(tiles);
    std::string text;
    std::size_t lineno = 0;
    while (std::getline(in, text)) {
        ++lineno;
        const std::size_t hash = text.find('#');
        if (hash != std::string::npos)
            text.resize(hash);
        std::istringstream tokens(text);
        std::string tok;
        while (tokens >> tok) {
            unsigned long shard = 0, count = 1;
            std::size_t used = 0;
            try {
                shard = std::stoul(tok, &used);
            } catch (...) {
                return fail(lineno, "bad token '" + tok +
                                        "' (want <shard> or "
                                        "<shard>x<count>)");
            }
            if (used < tok.size()) {
                if (tok[used] != 'x')
                    return fail(lineno, "bad token '" + tok +
                                            "' (want <shard> or "
                                            "<shard>x<count>)");
                const std::string rest = tok.substr(used + 1);
                std::size_t used2 = 0;
                try {
                    count = std::stoul(rest, &used2);
                } catch (...) {
                    used2 = 0;
                }
                if (used2 == 0 || used2 < rest.size() || count == 0)
                    return fail(lineno, "bad run length in '" + tok + "'");
            }
            if (shard >= shards)
                return fail(lineno, "shard " + std::to_string(shard) +
                                        " out of range (" +
                                        std::to_string(shards) +
                                        " shards)");
            if (map.size() + count > tiles)
                return fail(lineno,
                            "map assigns more than " +
                                std::to_string(tiles) + " tiles");
            map.insert(map.end(), count, std::uint32_t(shard));
        }
    }
    if (map.size() != tiles)
        return fail(lineno ? lineno : 1,
                    "map assigns " + std::to_string(map.size()) + " of " +
                        std::to_string(tiles) + " tiles");
    std::vector<bool> seen(shards, false);
    for (std::uint32_t s : map)
        seen[s] = true;
    for (std::uint32_t s = 0; s < shards; ++s)
        if (!seen[s])
            return fail(lineno ? lineno : 1,
                        "shard " + std::to_string(s) + " owns no tiles");
    map_out = std::move(map);
    return true;
}

bool
loadShardMapFile(const std::string& path, std::uint32_t tiles,
                 std::uint32_t shards,
                 std::vector<std::uint32_t>& map_out, std::string* err)
{
    std::ifstream in(path);
    if (!in) {
        if (err)
            *err = path + ": cannot open";
        return false;
    }
    return parseShardMap(in, path, tiles, shards, map_out, err);
}

// -- TreeBarrier ---------------------------------------------------------

TreeBarrier::TreeBarrier(std::uint32_t parties)
    : _leafOf(parties), _slots(parties)
{
    SBULK_ASSERT(parties >= 1, "barrier needs at least one party");
    // Level 0: parties group into leaves of kArity; each higher level
    // folds kArity child nodes into one, up to a single root. Nodes hold
    // atomics (non-movable), so size the whole tree up front.
    std::vector<std::uint32_t> widths{(parties + kArity - 1) / kArity};
    while (widths.back() > 1)
        widths.push_back((widths.back() + kArity - 1) / kArity);
    std::uint32_t total = 0;
    for (std::uint32_t w : widths)
        total += w;
    _nodes = std::vector<Node>(total);

    for (std::uint32_t p = 0; p < parties; ++p) {
        _leafOf[p] = p / kArity;
        ++_nodes[p / kArity].parties;
    }
    std::uint32_t level_base = 0;
    for (std::size_t l = 0; l + 1 < widths.size(); ++l) {
        const std::uint32_t next_base = level_base + widths[l];
        for (std::uint32_t i = 0; i < widths[l]; ++i) {
            _nodes[level_base + i].parent = next_base + i / kArity;
            ++_nodes[next_base + i / kArity].parties;
        }
        level_base = next_base;
    }
    _nodes[level_base].root = true;
}

// -- ShardEngine ---------------------------------------------------------

ShardEngine::ShardEngine(const ShardPlan& plan,
                         std::vector<EventQueue*> queues,
                         ShardChannels& chan, std::vector<Tick> lookahead,
                         std::uint32_t total_cores,
                         std::function<std::uint32_t(std::uint32_t)>
                             done_cores)
    : _plan(plan), _queues(std::move(queues)), _chan(chan),
      _lookahead(closeLookahead(std::move(lookahead), plan.shards())),
      _totalCores(total_cores), _doneCores(std::move(done_cores)),
      _barrier(plan.shards()), _stats(plan.shards())
{
    SBULK_ASSERT(_queues.size() == plan.shards(),
                 "one queue per shard required");
}

Tick
ShardEngine::run(Tick tick_limit)
{
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint32_t S = _plan.shards();
    std::vector<std::thread> threads;
    threads.reserve(S - 1);
    for (std::uint32_t s = 1; s < S; ++s)
        threads.emplace_back([this, s, tick_limit] {
            worker(s, tick_limit);
        });
    worker(0, tick_limit);
    for (auto& th : threads)
        th.join();
    _wallSec = secondsSince(t0);
    return _stopTick.load(std::memory_order_relaxed);
}

void
ShardEngine::worker(std::uint32_t s, Tick tick_limit)
{
    ShardScope scope(s);
    EventQueue& q = *_queues[s];
    ShardStats& st = _stats[s];
    const std::uint32_t S = _plan.shards();
    std::vector<Tick> heads(S);

    while (true) {
        // Phase A: all shards finished the previous run phase; drain the
        // inbound channels into the local queue and publish this shard's
        // head tick and finished-core count.
        auto b0 = std::chrono::steady_clock::now();
        _barrier.arrive(s);
        st.stallSec += secondsSince(b0);
        _chan.drain(s, [&](PendingEvent& ev) {
            q.injectKeyed(ev.when, ev.key, ev.tile, std::move(ev.fn));
        });
        ShardClock& slot = _barrier.slot(s);
        slot.head.store(q.headTick(), std::memory_order_relaxed);
        slot.now.store(q.now(), std::memory_order_relaxed);
        slot.done.store(_doneCores(s), std::memory_order_relaxed);

        // Phase B: heads published everywhere; every shard computes the
        // identical stop decision from the shared slots, then its own
        // pairwise horizon.
        b0 = std::chrono::steady_clock::now();
        _barrier.arrive(s);
        st.stallSec += secondsSince(b0);
        Tick min_head = kMaxTick;
        std::uint32_t done_total = 0;
        for (std::uint32_t i = 0; i < S; ++i) {
            heads[i] = _barrier.slot(i).head.load(std::memory_order_relaxed);
            min_head = std::min(min_head, heads[i]);
            done_total +=
                _barrier.slot(i).done.load(std::memory_order_relaxed);
        }
        if (min_head == kMaxTick) {
            // Nothing left anywhere: every queue is empty and every
            // channel was drained this window. With the cores finished,
            // that is a clean, quiescent end of run (the serial loop
            // stops at the final commit; windows keep going until the
            // in-flight protocol tail has delivered). With cores still
            // pending it is a machine deadlock, exactly as in serial.
            if (done_total < _totalCores) {
                SBULK_PANIC("sharded run deadlocked: all %u queues empty "
                            "with %u/%u cores done",
                            S, done_total, _totalCores);
            }
            if (s == 0) {
                _completed = true;
                Tick end = 0;
                for (std::uint32_t i = 0; i < S; ++i)
                    end = std::max(end,
                                   _barrier.slot(i).now.load(
                                       std::memory_order_relaxed));
                _stopTick.store(end, std::memory_order_relaxed);
            }
            break;
        }
        if (min_head >= tick_limit) {
            if (s == 0)
                _stopTick.store(min_head, std::memory_order_relaxed);
            break;
        }

        // Pairwise horizon over the path-closed matrix: this shard may
        // execute every event below the earliest tick at which anything
        // pending anywhere could still reach it. For another shard i
        // that is head[i] + D[i][s] (any causal chain out of i pays at
        // least the cheapest shard-path toward us); for this shard's own
        // head it is head[s] + D[s][s], the cheapest feedback cycle — a
        // reply to a message we send at t cannot land before t + D[s][s],
        // and without that term a wide window outruns its own round
        // trips. Every D entry is >= 1, so the shard holding the global
        // min head always clears at least one event and the machine makes
        // progress every window; shards whose horizon sits at or below
        // their own head simply run empty this round.
        Tick horizon = kMaxTick;
        for (std::uint32_t i = 0; i < S; ++i) {
            if (heads[i] == kMaxTick)
                continue;
            horizon = std::min(
                horizon,
                satAdd(heads[i], _lookahead[std::size_t(i) * S + s]));
        }
        const Tick window_end = std::min(horizon, tick_limit);

        // Run phase: execute everything below the window boundary.
        // Cross-shard schedules land in this shard's outboxes, drained by
        // their destinations after the next barrier.
        const double w0 = threadCpuSec();
        const std::uint64_t ran = q.runUntil(window_end);
        st.busySec += threadCpuSec() - w0;
        st.events += ran;
        ++st.windows;
        if (ran == 0)
            ++st.emptyWindows;
    }
    // All shards break out at the same window (the stop decision is a
    // pure function of the shared slots), so no final barrier is needed;
    // the join in run() is the last synchronization point.
}

} // namespace sbulk
