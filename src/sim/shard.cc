#include "sim/shard.hh"

#include <algorithm>
#include <chrono>
#include <thread>

namespace sbulk
{

namespace
{

thread_local std::uint32_t tls_shard = 0;

/** RAII shard identity for the worker's lifetime on this thread. */
struct ShardScope
{
    explicit ShardScope(std::uint32_t s) { tls_shard = s; }
    ~ShardScope() { tls_shard = 0; }
};

} // namespace

std::uint32_t
currentShard()
{
    return tls_shard;
}

ShardEngine::ShardEngine(const ShardPlan& plan,
                         std::vector<EventQueue*> queues,
                         ShardChannels& chan, Tick lookahead,
                         std::uint32_t total_cores,
                         std::function<std::uint32_t(std::uint32_t)>
                             done_cores)
    : _plan(plan), _queues(std::move(queues)), _chan(chan),
      _lookahead(lookahead), _totalCores(total_cores),
      _doneCores(std::move(done_cores)), _barrier(plan.shards()),
      _head(plan.shards()), _now(plan.shards()), _done(plan.shards()),
      _stats(plan.shards())
{
    SBULK_ASSERT(_queues.size() == plan.shards(),
                 "one queue per shard required");
    SBULK_ASSERT(_lookahead >= 1, "lookahead must be positive");
}

Tick
ShardEngine::run(Tick tick_limit)
{
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint32_t S = _plan.shards();
    std::vector<std::thread> threads;
    threads.reserve(S - 1);
    for (std::uint32_t s = 1; s < S; ++s)
        threads.emplace_back([this, s, tick_limit] {
            worker(s, tick_limit);
        });
    worker(0, tick_limit);
    for (auto& th : threads)
        th.join();
    _wallSec = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    return _stopTick.load(std::memory_order_relaxed);
}

void
ShardEngine::worker(std::uint32_t s, Tick tick_limit)
{
    ShardScope scope(s);
    EventQueue& q = *_queues[s];
    ShardStats& st = _stats[s];
    const std::uint32_t S = _plan.shards();

    while (true) {
        // Phase A: all shards finished the previous run phase; drain the
        // inbound channels into the local queue and publish this shard's
        // head tick and finished-core count.
        _barrier.arrive();
        _chan.drain(s, [&](PendingEvent& ev) {
            q.injectKeyed(ev.when, ev.key, ev.tile, std::move(ev.fn));
        });
        _head[s].store(q.headTick(), std::memory_order_relaxed);
        _now[s].store(q.now(), std::memory_order_relaxed);
        _done[s].store(_doneCores(s), std::memory_order_relaxed);

        // Phase B: heads published everywhere; every shard computes the
        // identical window decision from the shared arrays.
        _barrier.arrive();
        Tick min_head = kMaxTick;
        std::uint32_t done_total = 0;
        for (std::uint32_t i = 0; i < S; ++i) {
            min_head = std::min(
                min_head, _head[i].load(std::memory_order_relaxed));
            done_total += _done[i].load(std::memory_order_relaxed);
        }
        if (min_head == kMaxTick) {
            // Nothing left anywhere: every queue is empty and every
            // channel was drained this window. With the cores finished,
            // that is a clean, quiescent end of run (the serial loop
            // stops at the final commit; windows keep going until the
            // in-flight protocol tail has delivered). With cores still
            // pending it is a machine deadlock, exactly as in serial.
            if (done_total < _totalCores) {
                SBULK_PANIC("sharded run deadlocked: all %u queues empty "
                            "with %u/%u cores done",
                            S, done_total, _totalCores);
            }
            if (s == 0) {
                _completed = true;
                Tick end = 0;
                for (std::uint32_t i = 0; i < S; ++i)
                    end = std::max(
                        end, _now[i].load(std::memory_order_relaxed));
                _stopTick.store(end, std::memory_order_relaxed);
            }
            break;
        }
        if (min_head >= tick_limit) {
            if (s == 0)
                _stopTick.store(min_head, std::memory_order_relaxed);
            break;
        }
        const Tick window_end = min_head + _lookahead;

        // Run phase: execute everything below the window boundary.
        // Cross-shard schedules land in this shard's outboxes, drained by
        // their destinations after the next barrier.
        const auto w0 = std::chrono::steady_clock::now();
        st.events += q.runUntil(window_end);
        st.busySec += std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - w0)
                          .count();
        ++st.windows;
    }
    // All shards break out at the same window (the decision is a pure
    // function of the shared head/done arrays), so no final barrier is
    // needed; the join in run() is the last synchronization point.
}

} // namespace sbulk
