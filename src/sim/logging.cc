#include "sim/logging.hh"

#include <execinfo.h>

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace sbulk
{

namespace
{
LogLevel gLogLevel = LogLevel::Normal;
} // namespace

LogLevel
logLevel()
{
    return gLogLevel;
}

void
setLogLevel(LogLevel level)
{
    gLogLevel = level;
}

namespace detail
{

std::string
formatMsg(const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (n < 0) {
        va_end(ap2);
        return std::string(fmt);
    }
    std::vector<char> buf(std::size_t(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), std::size_t(n));
}

void
panicImpl(const char* file, int line, const std::string& msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    void* frames[32];
    int n = ::backtrace(frames, 32);
    ::backtrace_symbols_fd(frames, n, 2);
    std::abort();
}

void
fatalImpl(const char* file, int line, const std::string& msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string& msg)
{
    if (gLogLevel >= LogLevel::Normal)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string& msg)
{
    if (gLogLevel >= LogLevel::Verbose)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail

} // namespace sbulk
