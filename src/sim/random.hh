/**
 * @file
 * Deterministic pseudo-random number generation for workload models.
 *
 * A small xoshiro256** generator: fast, seedable, and independent of the
 * standard library's unspecified distributions, so runs are reproducible
 * across compilers.
 */

#ifndef SBULK_SIM_RANDOM_HH
#define SBULK_SIM_RANDOM_HH

#include <cstdint>

#include "sim/logging.hh"

namespace sbulk
{

/** Deterministic, seedable RNG with the distributions workloads need. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5bd1e995u) { reseed(seed); }

    /** Re-initialize state from @p seed via splitmix64. */
    void
    reseed(std::uint64_t seed)
    {
        for (auto& word : _s)
            word = splitmix64(seed);
    }

    /** Uniform 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(_s[1] * 5, 7) * 9;
        const std::uint64_t t = _s[1] << 17;
        _s[2] ^= _s[0];
        _s[3] ^= _s[1];
        _s[1] ^= _s[2];
        _s[0] ^= _s[3];
        _s[2] ^= t;
        _s[3] = rotl(_s[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        SBULK_ASSERT(bound > 0);
        // Lemire's nearly-divisionless bounded generation.
        unsigned __int128 m = (unsigned __int128)next() * bound;
        return (std::uint64_t)(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    between(std::uint64_t lo, std::uint64_t hi)
    {
        SBULK_ASSERT(lo <= hi);
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return double(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Geometric run length >= 1 with mean @p mean (mean must be >= 1).
     * Used for spatial-locality run modeling.
     */
    std::uint64_t
    runLength(double mean)
    {
        if (mean <= 1.0)
            return 1;
        double p = 1.0 / mean;
        std::uint64_t len = 1;
        // Cap to keep pathological parameters from spinning.
        while (len < 1024 && !chance(p))
            ++len;
        return len;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static std::uint64_t
    splitmix64(std::uint64_t& state)
    {
        state += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    std::uint64_t _s[4];
};

} // namespace sbulk

#endif // SBULK_SIM_RANDOM_HH
