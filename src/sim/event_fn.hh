/**
 * @file
 * Move-only callable storage for the event slab.
 *
 * std::function is the natural type for event callbacks, but it pays an
 * indirect "manager" call on every move and destruction — and the event
 * kernel moves each callback at least twice (into the slab, back out at
 * dispatch). Every hot callback in the simulator is a small trivially
 * copyable lambda ([this] plus a few scalars), for which EventFn stores the
 * closure inline and moves it with a plain memcpy: no manager, no
 * allocation, one indirect call at invocation only.
 *
 * Callables that are too big or not trivially copyable (e.g. a
 * std::function passed through from a miss path) fall back to a heap box.
 */

#ifndef SBULK_SIM_EVENT_FN_HH
#define SBULK_SIM_EVENT_FN_HH

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace sbulk
{

/** See file comment: a lean move-only stand-in for std::function<void()>. */
class EventFn
{
  public:
    /** Sized so EventFn matches std::function's 32-byte footprint while
     *  covering [this + three scalars] captures inline. */
    static constexpr std::size_t kInlineBytes = 24;

    EventFn() = default;
    EventFn(std::nullptr_t) {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventFn> &&
                  !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                  std::is_invocable_r_v<void, std::decay_t<F>&>>>
    EventFn(F&& f)
    {
        construct(std::forward<F>(f));
    }

    EventFn(EventFn&& other) noexcept { moveFrom(other); }

    EventFn&
    operator=(EventFn&& other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    EventFn&
    operator=(std::nullptr_t)
    {
        reset();
        return *this;
    }

    EventFn(const EventFn&) = delete;
    EventFn& operator=(const EventFn&) = delete;

    ~EventFn() { reset(); }

    explicit operator bool() const { return _invoke != nullptr; }

    void operator()() { _invoke(_store); }

  private:
    using Invoke = void (*)(void*);
    using Drop = void (*)(void*);

    template <typename F>
    void
    construct(F&& f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_trivially_copyable_v<Fn> &&
                      std::is_trivially_destructible_v<Fn>) {
            ::new (static_cast<void*>(_store)) Fn(std::forward<F>(f));
            // moveFrom copies the whole buffer; defined-initialize the
            // tail so that copy never reads indeterminate bytes.
            if constexpr (sizeof(Fn) < kInlineBytes)
                std::memset(_store + sizeof(Fn), 0,
                            kInlineBytes - sizeof(Fn));
            _invoke = [](void* p) { (*static_cast<Fn*>(p))(); };
            _drop = nullptr;
        } else {
            // The one owning raw new in the tree: the pointer is erased
            // into the inline buffer, so no smart pointer can hold it.
            // _drop is its deleter; ASan guards the pairing.
            // NOLINTNEXTLINE(cppcoreguidelines-owning-memory)
            Fn* heap = new Fn(std::forward<F>(f));
            std::memcpy(_store, &heap, sizeof(heap));
            std::memset(_store + sizeof(heap), 0,
                        kInlineBytes - sizeof(heap));
            _invoke = [](void* p) {
                Fn* fn;
                std::memcpy(&fn, p, sizeof(fn));
                (*fn)();
            };
            _drop = [](void* p) {
                Fn* fn;
                std::memcpy(&fn, p, sizeof(fn));
                // NOLINTNEXTLINE(cppcoreguidelines-owning-memory)
                delete fn;
            };
        }
    }

    void
    moveFrom(EventFn& other)
    {
        _invoke = other._invoke;
        _drop = other._drop;
        // Inline closures are trivially copyable by construction and the
        // heap case stores a raw pointer, so a byte copy is a real move.
        std::memcpy(_store, other._store, kInlineBytes);
        other._invoke = nullptr;
        other._drop = nullptr;
    }

    void
    reset()
    {
        if (_drop)
            _drop(_store);
        _invoke = nullptr;
        _drop = nullptr;
    }

    Invoke _invoke = nullptr;
    Drop _drop = nullptr;
    alignas(std::max_align_t) unsigned char _store[kInlineBytes];
};

} // namespace sbulk

#endif // SBULK_SIM_EVENT_FN_HH
