#include "sim/stats.hh"

#include "sim/logging.hh"

namespace sbulk
{

double
StatSet::get(const std::string& name) const
{
    auto it = _values.find(name);
    SBULK_ASSERT(it != _values.end(), "unknown stat '%s'", name.c_str());
    return it->second;
}

void
StatSet::dump(std::ostream& os) const
{
    for (const auto& [name, value] : _values)
        os << name << " = " << value << "\n";
}

} // namespace sbulk
