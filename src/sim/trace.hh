/**
 * @file
 * Category-gated debug tracing, in the spirit of gem5's DPRINTF.
 *
 * Categories are enabled at runtime (e.g. from sbulk-sim's --trace flag);
 * a disabled category costs one branch. Output goes to a configurable
 * stream, each line stamped with the simulated tick and the category.
 */

#ifndef SBULK_SIM_TRACE_HH
#define SBULK_SIM_TRACE_HH

#include <array>
#include <cstdarg>
#include <ostream>
#include <string>

#include "sim/types.hh"

namespace sbulk
{
namespace trace
{

/** Trace categories (extend freely; keep Count last). */
enum class Cat : std::uint8_t
{
    Commit, ///< commit requests / successes / failures / retries
    Group,  ///< group formation: grabs, collisions, confirmations
    Inv,    ///< bulk invalidations, acks, recalls
    Squash, ///< chunk squashes and replays
    Read,   ///< read path: misses, nacks, forwards
    Count,
};

const char* catName(Cat cat);

/** Parse a category name ("commit", "group", ...); Count if unknown. */
Cat parseCat(const std::string& name);

bool enabled(Cat cat);
void enable(Cat cat, bool on = true);
/** Enable from a comma-separated list ("commit,group" or "all").
 *  @return false if any name was unknown. */
bool enableList(const std::string& list);
void disableAll();

/** Redirect output (default: std::cerr). Pass null to restore. */
void setSink(std::ostream* sink);

/** Emit one trace line (printf-style). Call through SBULK_TRACE. */
void print(Cat cat, Tick now, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

} // namespace trace
} // namespace sbulk

/**
 * Emit a trace line when @p cat is enabled.
 * @param cat A trace::Cat value.
 * @param now The current Tick.
 */
#define SBULK_TRACE(cat, now, ...) \
    do { \
        if (::sbulk::trace::enabled(cat)) \
            ::sbulk::trace::print(cat, now, __VA_ARGS__); \
    } while (0)

#endif // SBULK_SIM_TRACE_HH
