/**
 * @file
 * Sparse set of tile/processor ids, replacing the old 64-bit presence
 * masks (`ProcMask`, chunk g_vecs, directory sharer vectors) so systems
 * larger than 64 tiles are representable.
 *
 * Representation: a small sorted inline array of ids (covering the common
 * case — sharer sets and commit groups are almost always a handful of
 * tiles) that spills to a heap-allocated bitmap once it outgrows the
 * inline capacity. Iteration is always in ascending id order, so every
 * loop over a NodeSet is deterministic and matches the order the old
 * `for (proc = 0; proc < 64; ++proc) if (mask & (1 << proc))` scans
 * produced.
 */

#ifndef SBULK_SIM_NODE_SET_HH
#define SBULK_SIM_NODE_SET_HH

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace sbulk
{

/** Sparse, order-deterministic set of node ids. */
class NodeSet
{
  public:
    NodeSet() = default;

    /** The set {n, rest...}. */
    template <typename... Ns>
    static NodeSet
    of(NodeId n, Ns... rest)
    {
        NodeSet s;
        s.insert(n);
        (s.insert(NodeId(rest)), ...);
        return s;
    }

    void
    insert(NodeId n)
    {
        SBULK_ASSERT(n <= 0xffffu, "NodeSet id out of range");
        if (_spilled) {
            const std::size_t w = n >> 6;
            if (w >= _bits.size())
                _bits.resize(w + 1, 0);
            const std::uint64_t bit = std::uint64_t(1) << (n & 63);
            if (!(_bits[w] & bit)) {
                _bits[w] |= bit;
                ++_count;
            }
            return;
        }
        std::uint32_t pos = 0;
        while (pos < _count && _inl[pos] < n)
            ++pos;
        if (pos < _count && _inl[pos] == n)
            return;
        if (_count < kInlineCap) {
            for (std::uint32_t i = _count; i > pos; --i)
                _inl[i] = _inl[i - 1];
            _inl[pos] = std::uint16_t(n);
            ++_count;
            return;
        }
        spill();
        insert(n);
    }

    void
    erase(NodeId n)
    {
        if (_spilled) {
            const std::size_t w = n >> 6;
            if (w >= _bits.size())
                return;
            const std::uint64_t bit = std::uint64_t(1) << (n & 63);
            if (_bits[w] & bit) {
                _bits[w] &= ~bit;
                --_count;
            }
            return;
        }
        for (std::uint32_t i = 0; i < _count; ++i) {
            if (_inl[i] == n) {
                for (std::uint32_t j = i + 1; j < _count; ++j)
                    _inl[j - 1] = _inl[j];
                --_count;
                return;
            }
        }
    }

    bool
    contains(NodeId n) const
    {
        if (_spilled) {
            const std::size_t w = n >> 6;
            return w < _bits.size() &&
                   (_bits[w] >> (n & 63)) & 1;
        }
        for (std::uint32_t i = 0; i < _count; ++i)
            if (_inl[i] == n)
                return true;
        return false;
    }

    std::uint32_t count() const { return _count; }
    bool empty() const { return _count == 0; }

    void
    clear()
    {
        _count = 0;
        _spilled = false;
        _bits.clear();
    }

    /** Lowest member (set must be non-empty). */
    NodeId
    first() const
    {
        SBULK_ASSERT(_count > 0, "first() on empty NodeSet");
        if (!_spilled)
            return _inl[0];
        for (std::size_t w = 0; w < _bits.size(); ++w)
            if (_bits[w])
                return NodeId(w * 64 + std::countr_zero(_bits[w]));
        SBULK_PANIC("NodeSet count/bitmap mismatch");
    }

    /** Visit members in ascending id order. */
    template <typename F>
    void
    forEach(F&& fn) const
    {
        if (!_spilled) {
            for (std::uint32_t i = 0; i < _count; ++i)
                fn(NodeId(_inl[i]));
            return;
        }
        for (std::size_t w = 0; w < _bits.size(); ++w) {
            std::uint64_t bits = _bits[w];
            while (bits) {
                const int b = std::countr_zero(bits);
                fn(NodeId(w * 64 + b));
                bits &= bits - 1;
            }
        }
    }

    NodeSet&
    operator|=(const NodeSet& o)
    {
        o.forEach([&](NodeId n) { insert(n); });
        return *this;
    }

    NodeSet
    operator|(const NodeSet& o) const
    {
        NodeSet r = *this;
        r |= o;
        return r;
    }

    /** Members of both sets. */
    NodeSet
    intersect(const NodeSet& o) const
    {
        NodeSet r;
        forEach([&](NodeId n) {
            if (o.contains(n))
                r.insert(n);
        });
        return r;
    }

    /** True if the sets share any member. */
    bool
    intersects(const NodeSet& o) const
    {
        if (!_spilled) {
            for (std::uint32_t i = 0; i < _count; ++i)
                if (o.contains(_inl[i]))
                    return true;
            return false;
        }
        bool hit = false;
        o.forEach([&](NodeId n) { hit = hit || contains(n); });
        return hit;
    }

    /** Copy of this set with @p n removed. */
    NodeSet
    without(NodeId n) const
    {
        NodeSet r = *this;
        r.erase(n);
        return r;
    }

    /** Remove every member of @p o from this set. */
    NodeSet&
    removeAll(const NodeSet& o)
    {
        o.forEach([&](NodeId n) { erase(n); });
        return *this;
    }

    bool
    operator==(const NodeSet& o) const
    {
        if (_count != o._count)
            return false;
        if (!_spilled) {
            for (std::uint32_t i = 0; i < _count; ++i)
                if (!o.contains(_inl[i]))
                    return false;
            return true;
        }
        bool eq = true;
        forEach([&](NodeId n) { eq = eq && o.contains(n); });
        return eq;
    }
    bool operator!=(const NodeSet& o) const { return !(*this == o); }

    std::vector<NodeId>
    toVector() const
    {
        std::vector<NodeId> v;
        v.reserve(_count);
        forEach([&](NodeId n) { v.push_back(n); });
        return v;
    }

    /** Legacy bridge for ≤64-tile tests: the equivalent uint64 mask. */
    std::uint64_t
    toMask64() const
    {
        std::uint64_t m = 0;
        forEach([&](NodeId n) {
            SBULK_ASSERT(n < 64, "toMask64 on a >64-tile set");
            m |= std::uint64_t(1) << n;
        });
        return m;
    }

  private:
    static constexpr std::uint32_t kInlineCap = 6;

    void
    spill()
    {
        std::array<std::uint16_t, kInlineCap> saved = _inl;
        const std::uint32_t n = _count;
        _spilled = true;
        _count = 0;
        for (std::uint32_t i = 0; i < n; ++i)
            insert(saved[i]);
    }

    std::array<std::uint16_t, kInlineCap> _inl{};
    /** Member count (both representations). */
    std::uint32_t _count = 0;
    bool _spilled = false;
    /** Bitmap words, allocated lazily on spill. */
    std::vector<std::uint64_t> _bits;
};

} // namespace sbulk

#endif // SBULK_SIM_NODE_SET_HH
