/**
 * @file
 * Error and status reporting, following the gem5 split between panic()
 * (internal invariant broken — abort) and fatal() (user/configuration error —
 * clean exit), plus warn()/inform() status messages.
 */

#ifndef SBULK_SIM_LOGGING_HH
#define SBULK_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace sbulk
{

/** Verbosity levels for status messages. */
enum class LogLevel { Quiet, Normal, Verbose, Debug };

/** Global log level; benches set Quiet, debugging sets Debug. */
LogLevel logLevel();
void setLogLevel(LogLevel level);

namespace detail
{
[[noreturn]] void panicImpl(const char* file, int line, const std::string& msg);
[[noreturn]] void fatalImpl(const char* file, int line, const std::string& msg);
void warnImpl(const std::string& msg);
void informImpl(const std::string& msg);
std::string formatMsg(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
} // namespace detail

} // namespace sbulk

/** Internal invariant broken: a simulator bug. Aborts. */
#define SBULK_PANIC(...) \
    ::sbulk::detail::panicImpl(__FILE__, __LINE__, \
                               ::sbulk::detail::formatMsg(__VA_ARGS__))

/** The simulation cannot continue due to a user error. Exits. */
#define SBULK_FATAL(...) \
    ::sbulk::detail::fatalImpl(__FILE__, __LINE__, \
                               ::sbulk::detail::formatMsg(__VA_ARGS__))

/** Something may be modeled imperfectly; execution continues. */
#define SBULK_WARN(...) \
    ::sbulk::detail::warnImpl(::sbulk::detail::formatMsg(__VA_ARGS__))

/** Normal operating message. */
#define SBULK_INFORM(...) \
    ::sbulk::detail::informImpl(::sbulk::detail::formatMsg(__VA_ARGS__))

/** Cheap always-on assertion that panics with context on failure. */
#define SBULK_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            ::sbulk::detail::panicImpl(__FILE__, __LINE__, \
                std::string("assertion failed: ") + #cond \
                __VA_OPT__(+ " — " + ::sbulk::detail::formatMsg(__VA_ARGS__))); \
        } \
    } while (0)

#endif // SBULK_SIM_LOGGING_HH
