#include "sim/event_queue.hh"

namespace sbulk
{

void
EventQueue::skimCancelled()
{
    while (!_heap.empty()) {
        auto it = _cancelled.find(_heap.top().seq);
        if (it == _cancelled.end())
            return;
        _cancelled.erase(it);
        _heap.pop();
    }
}

EventQueue::Entry
EventQueue::popPolicyChoice()
{
    // Collect the batch of ready events: every non-cancelled entry at the
    // earliest tick. Popping the (when, seq)-ordered heap yields them in
    // ascending sequence order, which is the order the policy indexes.
    const Tick when = _heap.top().when;
    std::vector<Entry> batch;
    while (!_heap.empty() && _heap.top().when == when) {
        if (auto it = _cancelled.find(_heap.top().seq);
            it != _cancelled.end()) {
            _cancelled.erase(it);
            _heap.pop();
            continue;
        }
        batch.push_back(std::move(const_cast<Entry&>(_heap.top())));
        _heap.pop();
    }
    SBULK_ASSERT(!batch.empty(), "policy dispatch with no ready events");

    std::size_t pick = 0;
    if (batch.size() > 1) {
        pick = _policy->chooseNext(batch.size());
        SBULK_ASSERT(pick < batch.size(),
                     "schedule policy chose %zu of %zu", pick, batch.size());
    }

    Entry chosen = std::move(batch[pick]);
    // Re-queue the rest *before* running the chosen callback, so a
    // cancel() from inside it is honoured on their next surfacing.
    for (std::size_t i = 0; i < batch.size(); ++i) {
        if (i != pick)
            _heap.push(std::move(batch[i]));
    }
    return chosen;
}

void
EventQueue::dispatch(Entry e)
{
    SBULK_ASSERT(e.when >= _now, "event queue went back in time");
    _now = e.when;
    // The callback may schedule new events, which mutates the heap; the
    // entry was moved out of the heap before we got here.
    e.fn();
}

std::uint64_t
EventQueue::run(Tick limit)
{
    std::uint64_t executed = 0;
    while (true) {
        skimCancelled();
        if (_heap.empty() || _heap.top().when > limit)
            break;
        if (_policy) {
            dispatch(popPolicyChoice());
        } else {
            Entry e = std::move(const_cast<Entry&>(_heap.top()));
            _heap.pop();
            dispatch(std::move(e));
        }
        ++executed;
    }
    return executed;
}

bool
EventQueue::step()
{
    skimCancelled();
    if (_heap.empty())
        return false;
    if (_policy) {
        dispatch(popPolicyChoice());
    } else {
        Entry e = std::move(const_cast<Entry&>(_heap.top()));
        _heap.pop();
        dispatch(std::move(e));
    }
    return true;
}

} // namespace sbulk
