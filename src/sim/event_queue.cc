#include "sim/event_queue.hh"

namespace sbulk
{

std::uint64_t
EventQueue::run(Tick limit)
{
    std::uint64_t executed = 0;
    while (!_heap.empty()) {
        const Entry& top = _heap.top();
        if (top.when > limit)
            break;
        if (auto it = _cancelled.find(top.seq); it != _cancelled.end()) {
            _cancelled.erase(it);
            _heap.pop();
            continue;
        }
        SBULK_ASSERT(top.when >= _now, "event queue went back in time");
        _now = top.when;
        // Move the callback out before popping: running it may schedule new
        // events, which mutates the heap.
        auto fn = std::move(const_cast<Entry&>(top).fn);
        _heap.pop();
        fn();
        ++executed;
    }
    return executed;
}

bool
EventQueue::step()
{
    while (!_heap.empty()) {
        const Entry& top = _heap.top();
        if (auto it = _cancelled.find(top.seq); it != _cancelled.end()) {
            _cancelled.erase(it);
            _heap.pop();
            continue;
        }
        _now = top.when;
        auto fn = std::move(const_cast<Entry&>(top).fn);
        _heap.pop();
        fn();
        return true;
    }
    return false;
}

} // namespace sbulk
