#include "sim/event_queue.hh"

#include <algorithm>

namespace sbulk
{

// Only the policy path lives out of line: it is the schedule-exploration
// checker's hook, not the simulator fast path (which is fully inline in the
// header so event-loop drivers compile down to one tight loop).
EventQueue::HeapEntry
EventQueue::popPolicyChoice(Src src)
{
    // Collect the batch of ready events: every non-cancelled entry at the
    // earliest tick, from both structures. The ring bucket drains in
    // append (= ascending sequence) order and the heap pops in ascending
    // sequence order; the two runs can interleave (the window advances
    // between inserts), so sort the merged batch by sequence number — the
    // order the policy indexes.
    const Tick when = nextWhen(src);
    _batch.clear();
    if (_ringCount > 0 && _scanTick == when) {
        Bucket& b = _ring[when & (kRingTicks - 1)];
        while (b.head != kNilLink) {
            const std::uint32_t idx = ringPopHead(b);
            const Slot& s = _slots[idx];
            if (s.cancelled) {
                freeSlot(idx);
                continue;
            }
            _batch.push_back(HeapEntry{s.when, s.seq, idx});
        }
    }
    while (!_heap.empty() && _heap[0].when == when) {
        const HeapEntry e = heapPopTop();
        if (_slots[e.slot].cancelled) {
            freeSlot(e.slot);
            continue;
        }
        _batch.push_back(e);
    }
    std::sort(_batch.begin(), _batch.end(),
              [](const HeapEntry& a, const HeapEntry& b) {
                  return a.seq < b.seq;
              });
    SBULK_ASSERT(!_batch.empty(), "policy dispatch with no ready events");

    std::size_t pick = 0;
    if (_batch.size() > 1) {
        pick = _policy->chooseNext(_batch.size());
        SBULK_ASSERT(pick < _batch.size(),
                     "schedule policy chose %zu of %zu", pick, _batch.size());
    }

    const HeapEntry chosen = _batch[pick];
    // Re-queue the rest *before* running the chosen callback, so a
    // cancel() from inside it is honoured on their next surfacing.
    // Ascending-sequence iteration keeps a re-filled ring bucket in FIFO
    // order; the original sequence numbers are preserved.
    for (std::size_t i = 0; i < _batch.size(); ++i) {
        if (i != pick)
            enqueueEntry(_batch[i].slot, _batch[i].when, _batch[i].seq);
    }
    return chosen;
}

} // namespace sbulk
