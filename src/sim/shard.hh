/**
 * @file
 * Sharded conservative PDES scheduler for parallel-in-run simulation.
 *
 * The torus is partitioned into contiguous tile ranges (whole rows for
 * square meshes); each shard owns one range, one keyed EventQueue, and one
 * worker thread. Shards synchronize with conservative lookahead windows:
 * no cross-tile interaction is faster than the network's minimum
 * cross-tile delay (router latency + serialization + the 7-cycle link
 * latency on the torus; the configured wire latency on DirectNetwork), so
 * every shard can safely execute all events below
 * `min(all shard heads) + lookahead` between barriers. Cross-shard events
 * travel through per-(src,dst) timestamped channels that the destination
 * drains at the next window boundary.
 *
 * Determinism: events are ordered by (tick, canonical key) — see
 * EventQueue::enableKeyedOrder — which is a pure function of the simulated
 * machine, so the executed event sequence per tile, the window boundary
 * sequence, and all end-of-run statistics are identical for every shard
 * count >= 2. (`--shards 1` never constructs any of this and keeps the
 * byte-identical legacy serial path.)
 */

#ifndef SBULK_SIM_SHARD_HH
#define SBULK_SIM_SHARD_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "sim/event_fn.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace sbulk
{

/** Shard the calling thread is currently simulating (0 outside engines). */
std::uint32_t currentShard();

/** Contiguous partition of tiles [0, tiles) into `shards` ranges. */
class ShardPlan
{
  public:
    ShardPlan(std::uint32_t tiles, std::uint32_t shards)
        : _tiles(tiles), _shards(shards), _base(tiles / shards),
          _rem(tiles % shards)
    {
        SBULK_ASSERT(shards >= 1 && shards <= tiles,
                     "bad shard plan: %u shards over %u tiles", shards,
                     tiles);
    }

    std::uint32_t tiles() const { return _tiles; }
    std::uint32_t shards() const { return _shards; }

    std::uint32_t
    shardOf(std::uint32_t tile) const
    {
        const std::uint32_t big = _rem * (_base + 1);
        if (tile < big)
            return tile / (_base + 1);
        return _rem + (tile - big) / _base;
    }

    std::uint32_t
    firstTile(std::uint32_t s) const
    {
        return s < _rem ? s * (_base + 1)
                        : _rem * (_base + 1) + (s - _rem) * _base;
    }

    std::uint32_t
    tileCount(std::uint32_t s) const
    {
        return s < _rem ? _base + 1 : _base;
    }

  private:
    std::uint32_t _tiles;
    std::uint32_t _shards;
    std::uint32_t _base;
    std::uint32_t _rem;
};

/**
 * Sense-reversing (generation-counting) spin barrier. All-atomic, so the
 * cross-thread happens-before edges it provides are visible to TSan: a
 * plain write before arrive() on one thread is ordered before any read
 * after arrive() on every other thread.
 */
class SpinBarrier
{
  public:
    explicit SpinBarrier(std::uint32_t parties) : _parties(parties) {}

    void
    arrive()
    {
        const std::uint32_t gen = _gen.load(std::memory_order_acquire);
        if (_count.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            _parties) {
            _count.store(0, std::memory_order_relaxed);
            _gen.store(gen + 1, std::memory_order_release);
            return;
        }
        // Spin briefly (windows are microseconds apart when every shard
        // has its own CPU), then yield: on oversubscribed or single-CPU
        // hosts the releasing shard needs our timeslice to make progress,
        // and a hot spin would stall the whole window loop for a full
        // scheduler quantum per crossing.
        std::uint32_t spins = 0;
        while (_gen.load(std::memory_order_acquire) == gen) {
            if (++spins >= 128) {
                std::this_thread::yield();
                spins = 0;
            }
        }
    }

  private:
    const std::uint32_t _parties;
    std::atomic<std::uint32_t> _count{0};
    std::atomic<std::uint32_t> _gen{0};
};

/** One cross-shard event in flight between window boundaries. */
struct PendingEvent
{
    Tick when = 0;
    /** Canonical ordering key (EventQueue::allocKey on the origin tile). */
    std::uint64_t key = 0;
    /** Tile the event executes on (decides the destination shard). */
    std::uint32_t tile = 0;
    EventFn fn;
};

/**
 * Per-(src shard, dst shard) outboxes. A source appends during its run
 * phase; the destination drains during its drain phase. The two phases
 * are separated by a barrier, so no channel is ever touched by two
 * threads at once.
 */
class ShardChannels
{
  public:
    explicit ShardChannels(std::uint32_t shards)
        : _shards(shards), _chan(std::size_t(shards) * shards)
    {}

    void
    push(std::uint32_t src, std::uint32_t dst, PendingEvent ev)
    {
        _chan[std::size_t(src) * _shards + dst].push_back(std::move(ev));
    }

    /** Destination-side: move every inbound event into @p sink (ascending
     *  source shard; order is irrelevant to execution, which re-sorts by
     *  (when, key) in the heap). */
    template <typename Sink>
    void
    drain(std::uint32_t dst, Sink&& sink)
    {
        for (std::uint32_t src = 0; src < _shards; ++src) {
            auto& box = _chan[std::size_t(src) * _shards + dst];
            for (PendingEvent& ev : box)
                sink(ev);
            box.clear();
        }
    }

  private:
    std::uint32_t _shards;
    std::vector<std::vector<PendingEvent>> _chan;
};

/**
 * The window loop: drives S shard queues on S threads (the caller's
 * thread doubles as shard 0) until every core is done, the tick limit is
 * hit, or the whole machine deadlocks.
 */
class ShardEngine
{
  public:
    /** Per-shard utilization counters (scaling_study columns). */
    struct ShardStats
    {
        std::uint64_t events = 0;
        std::uint64_t windows = 0;
        /** Wall seconds inside runUntil (vs. barrier/drain overhead). */
        double busySec = 0;
    };

    /**
     * @param queues One keyed EventQueue per shard.
     * @param lookahead Conservative window width (cycles); must be <= the
     *        network's minimum cross-tile delivery delay.
     * @param total_cores Stop once this many cores report done.
     * @param done_cores done_cores(s) -> finished cores among shard s's
     *        tiles; called only from shard s's thread at window
     *        boundaries.
     */
    ShardEngine(const ShardPlan& plan, std::vector<EventQueue*> queues,
                ShardChannels& chan, Tick lookahead,
                std::uint32_t total_cores,
                std::function<std::uint32_t(std::uint32_t)> done_cores);

    /**
     * Run to completion: windows advance until every core is done AND
     * every queue and channel has drained (in-flight protocol messages
     * deliver, so the machine ends quiescent), or until @p tick_limit.
     * @return The stop tick: the max tick any shard reached when the
     *         machine drained, or >= tick_limit on limit.
     */
    Tick run(Tick tick_limit);

    const std::vector<ShardStats>& stats() const { return _stats; }
    /** Wall-clock seconds of the whole run() (utilization denominator). */
    double wallSeconds() const { return _wallSec; }
    /** True when run() stopped because every core finished. */
    bool completed() const { return _completed; }

  private:
    void worker(std::uint32_t s, Tick tick_limit);

    const ShardPlan& _plan;
    std::vector<EventQueue*> _queues;
    ShardChannels& _chan;
    const Tick _lookahead;
    const std::uint32_t _totalCores;
    std::function<std::uint32_t(std::uint32_t)> _doneCores;

    SpinBarrier _barrier;
    std::vector<std::atomic<Tick>> _head;
    /** Each shard's queue clock, published at window boundaries. */
    std::vector<std::atomic<Tick>> _now;
    std::vector<std::atomic<std::uint32_t>> _done;
    std::vector<ShardStats> _stats;
    std::atomic<Tick> _stopTick{0};
    bool _completed = false;
    double _wallSec = 0;
};

} // namespace sbulk

#endif // SBULK_SIM_SHARD_HH
