/**
 * @file
 * Sharded conservative PDES scheduler for parallel-in-run simulation.
 *
 * The torus is partitioned into shard regions — contiguous tile ranges by
 * default, or an arbitrary tile->shard map from the profile-guided
 * balanced partitioner / `--shard-map file:` — and each shard owns one
 * keyed EventQueue and one worker thread. Shards synchronize with
 * conservative lookahead windows, but the bound is *pairwise*: no event a
 * tile of shard A can schedule directly onto a tile of shard B lands
 * sooner than the network's minimum A->B delivery delay (min region hop
 * distance x link latency on the torus; the wire latency on
 * DirectNetwork). The engine closes that raw matrix over forwarding
 * paths (Floyd-Warshall), with the cheapest feedback cycle through each
 * shard on the diagonal, and each shard runs to its own horizon
 * `min over shards i with pending events of (head[i] + D[i][s])` —
 * including its own self term, which stops a wide window from outrunning
 * replies to its own sends. Far-apart shards therefore synchronize over
 * much wider windows than the old single global `min_head + lookahead()`
 * boundary.
 * Cross-shard events travel through per-(src,dst) SPSC ring channels that
 * the destination drains at the next window boundary.
 *
 * Determinism: events are ordered by (tick, canonical key) — see
 * EventQueue::enableKeyedOrder — which is a pure function of the simulated
 * machine, so the executed event sequence per tile and all end-of-run
 * statistics are identical for every shard count >= 2 and for every
 * tile->shard map. (`--shards 1` never constructs any of this and keeps
 * the byte-identical legacy serial path.)
 */

#ifndef SBULK_SIM_SHARD_HH
#define SBULK_SIM_SHARD_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <thread>
#include <vector>

#include "sim/event_fn.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"
#include "sim/types.hh"

namespace sbulk
{

/** Shard the calling thread is currently simulating (0 outside engines). */
std::uint32_t currentShard();

/**
 * Partition of tiles [0, tiles) into `shards` regions. The default
 * constructor builds the contiguous equal-size split; the map constructor
 * accepts any assignment in which every shard owns at least one tile
 * (balanced partitioner, `--shard-map file:`).
 */
class ShardPlan
{
  public:
    /** Contiguous split: the first tiles%shards shards get one extra. */
    ShardPlan(std::uint32_t tiles, std::uint32_t shards);

    /** Explicit tile->shard map; every shard must own >= 1 tile. */
    ShardPlan(std::vector<std::uint32_t> map, std::uint32_t shards);

    std::uint32_t tiles() const { return std::uint32_t(_map.size()); }
    std::uint32_t shards() const { return _shards; }

    std::uint32_t shardOf(std::uint32_t tile) const { return _map[tile]; }

    /** Tiles shard @p s owns, ascending. */
    const std::vector<std::uint32_t>&
    tilesOf(std::uint32_t s) const
    {
        return _tilesOf[s];
    }

    /** The full tile->shard map (run-output echo / replayability). */
    const std::vector<std::uint32_t>& map() const { return _map; }

  private:
    void buildTileLists();

    std::uint32_t _shards;
    std::vector<std::uint32_t> _map;
    std::vector<std::vector<std::uint32_t>> _tilesOf;
};

/**
 * Profile-guided balanced partition: walk the width x height grid in
 * boustrophedon (snake) order — so every shard region stays spatially
 * compact and pairwise hop distances stay meaningful — and cut the walk
 * into the contiguous split that minimizes the maximum bin weight (the
 * painter's-partition optimum, found by binary search over the cap).
 * Pure function of its inputs, hence deterministic; every shard receives
 * at least one tile. Weights are per-tile event counts from a warmup run
 * (each is used as weight+1 so zero-weight tiles still spread instead of
 * all landing in the last bin).
 */
std::vector<std::uint32_t> balancedShardMap(
    const std::vector<std::uint64_t>& weights, std::uint32_t width,
    std::uint32_t height, std::uint32_t shards);

/**
 * Parse a tile->shard map in the textual format run reports print:
 * whitespace-separated `<shard>` or `<shard>x<count>` run-length tokens
 * assigning tiles in ascending order, `#` to end of line is a comment.
 * On failure returns false and sets *err to "<name>:<line>: <reason>".
 */
bool parseShardMap(std::istream& in, const std::string& name,
                   std::uint32_t tiles, std::uint32_t shards,
                   std::vector<std::uint32_t>& map_out, std::string* err);

/** parseShardMap over a file path (the `--shard-map file:` escape hatch). */
bool loadShardMapFile(const std::string& path, std::uint32_t tiles,
                      std::uint32_t shards,
                      std::vector<std::uint32_t>& map_out,
                      std::string* err);

/** Render @p map as the run-length text parseShardMap accepts. */
std::string formatShardMap(const std::vector<std::uint32_t>& map);

/**
 * Per-shard clock publication slot, cache-line isolated: the owning shard
 * stores its post-drain head tick, queue clock, and finished-core count
 * before arriving at the decision barrier; every shard reads all slots
 * after it. The barrier's generation flip carries the happens-before
 * edge, so the slot fields themselves need only relaxed ordering.
 */
struct alignas(kCacheLineBytes) ShardClock
{
    std::atomic<Tick> head{0};
    std::atomic<Tick> now{0};
    std::atomic<std::uint32_t> done{0};
};

/**
 * Sense-reversing combining-tree barrier with the per-shard ShardClock
 * slots attached. Parties arrive at per-group leaf nodes (arity 4); the
 * last arriver at each node propagates one arrival up, and the root flips
 * a generation counter that waiters spin on. Splitting the arrival count
 * across tree nodes keeps high shard counts off a single contended
 * counter line, and the all-atomic implementation gives TSan-visible
 * happens-before edges: a plain write before arrive() on one thread is
 * ordered before any read after arrive() returns on every other thread.
 */
class TreeBarrier
{
  public:
    explicit TreeBarrier(std::uint32_t parties);

    /** Arrive as party @p s; returns once all parties arrived. */
    void
    arrive(std::uint32_t s)
    {
        const std::uint32_t gen = _gen.load(std::memory_order_acquire);
        signal(_leafOf[s]);
        // Spin briefly (windows are microseconds apart when every shard
        // has its own CPU), then yield: on oversubscribed or single-CPU
        // hosts the releasing shard needs our timeslice to make progress,
        // and a hot spin would stall the whole window loop for a full
        // scheduler quantum per crossing.
        std::uint32_t spins = 0;
        while (_gen.load(std::memory_order_acquire) == gen) {
            if (++spins >= 128) {
                std::this_thread::yield();
                spins = 0;
            }
        }
    }

    ShardClock& slot(std::uint32_t s) { return _slots[s]; }
    const ShardClock& slot(std::uint32_t s) const { return _slots[s]; }

  private:
    /** Children folded per tree node; 4 keeps the tree shallow while the
     *  per-node arrival counters stay on distinct cache lines. */
    static constexpr std::uint32_t kArity = 4;

    struct alignas(kCacheLineBytes) Node
    {
        std::atomic<std::uint32_t> count{0};
        /** Arrivals (parties or child nodes) this node waits for. */
        std::uint32_t parties = 0;
        std::uint32_t parent = 0;
        bool root = false;
    };

    void
    signal(std::uint32_t n)
    {
        // The acq_rel RMW chain up the tree plus the root's release store
        // forms the happens-before edge every waiter acquires through
        // _gen: all writes preceding any party's arrive() are visible
        // after the flip.
        while (true) {
            Node& node = _nodes[n];
            if (node.count.fetch_add(1, std::memory_order_acq_rel) + 1 !=
                node.parties)
                return;
            node.count.store(0, std::memory_order_relaxed);
            if (node.root) {
                _gen.fetch_add(1, std::memory_order_acq_rel);
                return;
            }
            n = node.parent;
        }
    }

    std::vector<Node> _nodes;
    /** Leaf node each party arrives at. */
    std::vector<std::uint32_t> _leafOf;
    std::vector<ShardClock> _slots;
    alignas(kCacheLineBytes) std::atomic<std::uint32_t> _gen{0};
};

/** One cross-shard event in flight between window boundaries. */
struct PendingEvent
{
    Tick when = 0;
    /** Canonical ordering key (EventQueue::allocKey on the origin tile). */
    std::uint64_t key = 0;
    /** Tile the event executes on (decides the destination shard). */
    std::uint32_t tile = 0;
    EventFn fn;
};

/**
 * Lock-free SPSC channel for one (src shard, dst shard) pair: a fixed
 * ring published with release stores and consumed with acquire loads, so
 * the producer->consumer edge is explicit to TSan and the steady state
 * allocates nothing. A full ring overflows into a spill vector, which is
 * safe because the window protocol additionally separates the producer's
 * run phase from the consumer's drain phase with a barrier.
 */
class SpscChannel
{
  public:
    SpscChannel() : _ring(kCapacity) {}
    SpscChannel(const SpscChannel&) = delete;
    SpscChannel& operator=(const SpscChannel&) = delete;

    /** Producer side (source shard's run phase). */
    void
    push(PendingEvent ev)
    {
        const std::size_t tail = _tail.load(std::memory_order_relaxed);
        if (tail - _head.load(std::memory_order_acquire) < kCapacity) {
            _ring[tail & (kCapacity - 1)] = std::move(ev);
            _tail.store(tail + 1, std::memory_order_release);
            return;
        }
        _spill.push_back(std::move(ev));
    }

    /** Consumer side (destination shard's drain phase). */
    template <typename Sink>
    void
    drain(Sink&& sink)
    {
        const std::size_t tail = _tail.load(std::memory_order_acquire);
        std::size_t head = _head.load(std::memory_order_relaxed);
        for (; head != tail; ++head)
            sink(_ring[head & (kCapacity - 1)]);
        _head.store(head, std::memory_order_release);
        if (_spill.empty())
            return;
        for (PendingEvent& ev : _spill)
            sink(ev);
        _spill.clear();
    }

  private:
    /** Ring entries; power of two. A window rarely crosses more than a
     *  few hundred events per channel, and the spill vector absorbs
     *  bursts beyond it. */
    static constexpr std::size_t kCapacity = 256;

    alignas(kCacheLineBytes) std::atomic<std::size_t> _head{0};
    alignas(kCacheLineBytes) std::atomic<std::size_t> _tail{0};
    std::vector<PendingEvent> _ring;
    /** Overflow outbox; producer-written in run phases, consumer-read in
     *  drain phases, with a barrier between the two. */
    std::vector<PendingEvent> _spill;
};

/**
 * Per-(src shard, dst shard) outboxes. A source pushes during its run
 * phase; the destination drains during its drain phase. Each channel is
 * single-producer single-consumer by construction, and execution re-sorts
 * drained events by (when, key) in the heap, so drain order across source
 * shards is irrelevant.
 */
class ShardChannels
{
  public:
    explicit ShardChannels(std::uint32_t shards)
        : _shards(shards), _chan(std::size_t(shards) * shards)
    {}

    void
    push(std::uint32_t src, std::uint32_t dst, PendingEvent ev)
    {
        _chan[std::size_t(src) * _shards + dst].push(std::move(ev));
    }

    /** Destination-side: move every inbound event into @p sink. */
    template <typename Sink>
    void
    drain(std::uint32_t dst, Sink&& sink)
    {
        for (std::uint32_t src = 0; src < _shards; ++src)
            _chan[std::size_t(src) * _shards + dst].drain(sink);
    }

  private:
    std::uint32_t _shards;
    std::vector<SpscChannel> _chan;
};

/**
 * The window loop: drives S shard queues on S threads (the caller's
 * thread doubles as shard 0) until every core is done, the tick limit is
 * hit, or the whole machine deadlocks.
 */
class ShardEngine
{
  public:
    /** Per-shard utilization counters (scaling_study columns). */
    struct ShardStats
    {
        std::uint64_t events = 0;
        std::uint64_t windows = 0;
        /** Windows in which this shard executed no events (its horizon
         *  sat at or below its own head). */
        std::uint64_t emptyWindows = 0;
        /** Thread-CPU seconds inside runUntil (vs. boundary overhead).
         *  Measured with the per-thread CPU clock, not wall time: on an
         *  oversubscribed host a wall interval around runUntil also
         *  counts preemption by sibling shard threads, double-charging
         *  their work to this shard. serial wall / max busySec is the
         *  dedicated-core critical-path speedup the perf harness gates. */
        double busySec = 0;
        /** Wall seconds blocked in barrier arrivals (the synchronization
         *  tax the pairwise lookahead and balanced maps shrink). */
        double stallSec = 0;
    };

    /**
     * @param queues One keyed EventQueue per shard.
     * @param lookahead Raw pairwise lookahead matrix, shards x shards:
     *        entry [i*S + s] is a conservative lower bound on the delay
     *        of any event shard i schedules directly onto shard s
     *        (Network::lookaheadMatrix). Off-diagonal entries must be
     *        >= 1; the diagonal is ignored. The engine closes the matrix
     *        over forwarding paths and derives the per-shard feedback
     *        cycle bound itself.
     * @param total_cores Stop once this many cores report done.
     * @param done_cores done_cores(s) -> finished cores among shard s's
     *        tiles; called only from shard s's thread at window
     *        boundaries.
     */
    ShardEngine(const ShardPlan& plan, std::vector<EventQueue*> queues,
                ShardChannels& chan, std::vector<Tick> lookahead,
                std::uint32_t total_cores,
                std::function<std::uint32_t(std::uint32_t)> done_cores);

    /**
     * Run to completion: windows advance until every core is done AND
     * every queue and channel has drained (in-flight protocol messages
     * deliver, so the machine ends quiescent), or until @p tick_limit.
     * @return The stop tick: the max tick any shard reached when the
     *         machine drained, or >= tick_limit on limit.
     */
    Tick run(Tick tick_limit);

    const std::vector<ShardStats>& stats() const { return _stats; }
    /** Wall-clock seconds of the whole run() (utilization denominator). */
    double wallSeconds() const { return _wallSec; }
    /** True when run() stopped because every core finished. */
    bool completed() const { return _completed; }

  private:
    void worker(std::uint32_t s, Tick tick_limit);

    const ShardPlan& _plan;
    std::vector<EventQueue*> _queues;
    ShardChannels& _chan;
    /** Pairwise lookahead matrix [src * shards + dst]. */
    const std::vector<Tick> _lookahead;
    const std::uint32_t _totalCores;
    std::function<std::uint32_t(std::uint32_t)> _doneCores;

    TreeBarrier _barrier;
    std::vector<ShardStats> _stats;
    std::atomic<Tick> _stopTick{0};
    bool _completed = false;
    double _wallSec = 0;
};

} // namespace sbulk

#endif // SBULK_SIM_SHARD_HH
