/**
 * @file
 * Lightweight statistics containers used across the simulator.
 *
 * Components own their stats and register them with a StatSet for textual
 * dumping; benches also read them programmatically through accessors.
 */

#ifndef SBULK_SIM_STATS_HH
#define SBULK_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace sbulk
{

/** A named 64-bit counter. */
class Scalar
{
  public:
    Scalar() = default;

    void inc(std::uint64_t n = 1) { _value += n; }
    void set(std::uint64_t v) { _value = v; }
    std::uint64_t value() const { return _value; }
    void reset() { _value = 0; }

  private:
    std::uint64_t _value = 0;
};

/** Running average over samples. */
class Average
{
  public:
    void
    sample(double v)
    {
        _sum += v;
        ++_count;
    }

    double mean() const { return _count ? _sum / double(_count) : 0.0; }
    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    void reset() { _sum = 0.0; _count = 0; }

    /** Fold @p other 's samples in (per-shard stats aggregation). */
    void
    merge(const Average& other)
    {
        _sum += other._sum;
        _count += other._count;
    }

  private:
    double _sum = 0.0;
    std::uint64_t _count = 0;
};

/**
 * Bucketized histogram over non-negative integer samples.
 *
 * Buckets are fixed-width; samples beyond the last bucket accumulate in an
 * overflow bucket. Mean/min/max are exact (computed from raw samples, not
 * bucket midpoints). Percentiles are bucket-resolution.
 */
class Distribution
{
  public:
    /**
     * @param bucket_width Width of each bucket.
     * @param num_buckets Number of regular buckets before overflow.
     */
    explicit Distribution(std::uint64_t bucket_width = 1,
                          std::size_t num_buckets = 64)
        : _bucketWidth(bucket_width ? bucket_width : 1),
          _buckets(num_buckets + 1, 0)
    {}

    void
    sample(std::uint64_t v)
    {
        std::size_t idx = std::min<std::size_t>(v / _bucketWidth,
                                                _buckets.size() - 1);
        ++_buckets[idx];
        _sum += v;
        ++_count;
        _min = _count == 1 ? v : std::min(_min, v);
        _max = std::max(_max, v);
    }

    std::uint64_t count() const { return _count; }
    double mean() const { return _count ? double(_sum) / double(_count) : 0.0; }
    std::uint64_t min() const { return _count ? _min : 0; }
    std::uint64_t max() const { return _max; }
    std::uint64_t bucketWidth() const { return _bucketWidth; }
    const std::vector<std::uint64_t>& buckets() const { return _buckets; }

    /**
     * Smallest sample value v such that at least @p p (0..1) of the samples
     * are <= v, at bucket resolution (upper bucket edge).
     */
    std::uint64_t
    percentile(double p) const
    {
        if (_count == 0)
            return 0;
        std::uint64_t target =
            std::uint64_t(p * double(_count) + 0.5);
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < _buckets.size(); ++i) {
            cum += _buckets[i];
            if (cum >= target)
                return (i + 1) * _bucketWidth;
        }
        return _max;
    }

    /**
     * Fold @p other into this distribution. Requires identical geometry
     * (bucket width and count) — merging per-run histograms into a
     * cross-run aggregate, as the per-tenant sweep reports do.
     */
    void
    merge(const Distribution& other)
    {
        if (other._count == 0)
            return;
        for (std::size_t i = 0; i < _buckets.size(); ++i)
            _buckets[i] += other._buckets[i];
        _sum += other._sum;
        _min = _count == 0 ? other._min : std::min(_min, other._min);
        _max = std::max(_max, other._max);
        _count += other._count;
    }

    void
    reset()
    {
        std::fill(_buckets.begin(), _buckets.end(), 0);
        _sum = 0;
        _count = 0;
        _min = 0;
        _max = 0;
    }

  private:
    std::uint64_t _bucketWidth;
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _sum = 0;
    std::uint64_t _count = 0;
    std::uint64_t _min = 0;
    std::uint64_t _max = 0;
};

/**
 * A name → value registry for dumping a component tree's statistics.
 *
 * Values are snapshots taken at record time (simple and allocation-free at
 * simulation time).
 */
class StatSet
{
  public:
    void record(const std::string& name, double value) { _values[name] = value; }
    void
    record(const std::string& name, const Average& avg)
    {
        _values[name + ".mean"] = avg.mean();
        _values[name + ".count"] = double(avg.count());
    }
    void
    record(const std::string& name, const Distribution& d)
    {
        _values[name + ".mean"] = d.mean();
        _values[name + ".count"] = double(d.count());
        _values[name + ".max"] = double(d.max());
        _values[name + ".p90"] = double(d.percentile(0.90));
    }

    double get(const std::string& name) const;
    bool has(const std::string& name) const { return _values.count(name) > 0; }
    void dump(std::ostream& os) const;
    const std::map<std::string, double>& values() const { return _values; }

  private:
    std::map<std::string, double> _values;
};

} // namespace sbulk

#endif // SBULK_SIM_STATS_HH
