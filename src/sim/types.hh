/**
 * @file
 * Fundamental simulator-wide type aliases and constants.
 *
 * These mirror the conventions of execution-driven architecture simulators:
 * a global simulated time in cycles (Tick), byte addresses (Addr), and small
 * integer identifiers for tiles, processors, and directory modules.
 */

#ifndef SBULK_SIM_TYPES_HH
#define SBULK_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace sbulk
{

/** Simulated time, in processor clock cycles. */
using Tick = std::uint64_t;

/** A byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/** Identifier of a tile in the multicore (one core + one directory each). */
using NodeId = std::uint32_t;

/** Identifier of a chunk: originating processor ID + local sequence number. */
struct ChunkTag
{
    NodeId proc = 0;
    std::uint64_t seq = 0;

    bool operator==(const ChunkTag&) const = default;
    auto operator<=>(const ChunkTag&) const = default;

    /** True for a default-constructed tag that names no chunk. */
    bool
    valid() const
    {
        return seq != 0;
    }
};

/** Sentinel for "no tick scheduled". */
inline constexpr Tick kMaxTick = std::numeric_limits<Tick>::max();

/** Sentinel node id. */
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

} // namespace sbulk

// Hash support so ChunkTag can key unordered containers.
template <>
struct std::hash<sbulk::ChunkTag>
{
    std::size_t
    operator()(const sbulk::ChunkTag& tag) const noexcept
    {
        std::uint64_t x = (std::uint64_t(tag.proc) << 48) ^ tag.seq;
        // splitmix64 finalizer
        x += 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return std::size_t(x ^ (x >> 31));
    }
};

#endif // SBULK_SIM_TYPES_HH
