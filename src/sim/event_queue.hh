/**
 * @file
 * Deterministic discrete-event simulation kernel.
 *
 * All simulator components share one EventQueue. Events are plain callbacks
 * scheduled at an absolute Tick; ties are broken by insertion order, so a
 * simulation with the same inputs always replays identically.
 */

#ifndef SBULK_SIM_EVENT_QUEUE_HH
#define SBULK_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace sbulk
{

/**
 * A time-ordered queue of callbacks driving the whole simulation.
 *
 * Components capture what they need in the callback; there is no Event class
 * hierarchy to subclass. Cancellation is supported through EventHandle.
 */
class EventQueue
{
  public:
    /** Opaque ticket identifying a scheduled event, usable to cancel it. */
    using EventHandle = std::uint64_t;

    EventQueue() = default;
    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     *
     * @param when Absolute tick; must be >= now().
     * @param fn Callback to invoke.
     * @return Handle that can be passed to cancel().
     */
    EventHandle
    schedule(Tick when, std::function<void()> fn)
    {
        SBULK_ASSERT(when >= _now,
                     "scheduling in the past: when=%llu now=%llu",
                     (unsigned long long)when, (unsigned long long)_now);
        EventHandle h = _nextSeq++;
        _heap.push(Entry{when, h, std::move(fn)});
        return h;
    }

    /** Schedule @p fn to run @p delta ticks from now. */
    EventHandle
    scheduleIn(Tick delta, std::function<void()> fn)
    {
        return schedule(_now + delta, std::move(fn));
    }

    /**
     * Cancel a previously-scheduled event.
     *
     * Must only be called for events that have not run yet (the caller —
     * e.g. a timeout being descheduled — is in a position to know).
     * Cancelling the same handle twice is a no-op.
     */
    void cancel(EventHandle h) { _cancelled.insert(h); }

    /** Number of events scheduled but not yet run or cancelled. */
    std::size_t pending() const { return _heap.size() - _cancelled.size(); }

    /** True when no runnable events remain. */
    bool empty() const { return pending() == 0; }

    /**
     * Run events in time order until the queue drains or @p limit is hit.
     *
     * @param limit Stop once now() would exceed this tick.
     * @return Number of events executed.
     */
    std::uint64_t run(Tick limit = kMaxTick);

    /**
     * Run a single event (the earliest pending one).
     * @return false if the queue was empty.
     */
    bool step();

  private:
    struct Entry
    {
        Tick when;
        EventHandle seq;
        std::function<void()> fn;
    };

    struct Later
    {
        bool
        operator()(const Entry& a, const Entry& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> _heap;
    std::unordered_set<EventHandle> _cancelled;
    Tick _now = 0;
    EventHandle _nextSeq = 0;
};

} // namespace sbulk

#endif // SBULK_SIM_EVENT_QUEUE_HH
