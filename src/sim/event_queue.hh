/**
 * @file
 * Deterministic discrete-event simulation kernel.
 *
 * All simulator components share one EventQueue. Events are plain callbacks
 * scheduled at an absolute Tick. Same-tick ordering is an explicit,
 * documented policy rather than an accident of the underlying container:
 *
 *  - Default (no SchedulePolicy installed): insertion-order FIFO. Every
 *    event carries a monotonically increasing sequence number, and ties at
 *    the same tick run in ascending sequence order. A simulation with the
 *    same inputs therefore always replays identically.
 *  - With a SchedulePolicy installed, the policy chooses which of the
 *    ready (earliest-tick) events runs next. This is the hook the
 *    schedule-exploration checker (src/check/) uses to enumerate distinct
 *    legal interleavings and to replay a recorded one byte-for-byte.
 *
 * Storage is allocation-light: callbacks live in a slab of reusable slots
 * recycled through a free list, so a steady-state simulation schedules
 * millions of events with no allocation beyond high-water growth, and
 * cancel() is O(1) (a flag on the slot; the entry is recycled when it
 * surfaces).
 *
 * Time ordering is a calendar ring with a heap overflow. Almost every event
 * in a simulation is scheduled a handful of ticks out (core ops, cache
 * latencies, network hops), so events whose tick falls within kRingTicks of
 * the scan cursor are appended to a per-tick FIFO bucket list: O(1) enqueue
 * and dequeue, no sifting. Only far-future events (long backoffs, start
 * skews, tick limits) overflow into a binary heap of compact
 * (tick, seq, slot) keys. Dispatch always merges the ring's earliest bucket
 * head with the heap top by (tick, seq), so the run order is exactly the
 * documented one regardless of which structure held an event.
 */

#ifndef SBULK_SIM_EVENT_QUEUE_HH
#define SBULK_SIM_EVENT_QUEUE_HH

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_fn.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace sbulk
{

/**
 * Pluggable same-tick tie-break policy.
 *
 * When several pending events share the earliest tick, the queue presents
 * them as a batch indexed 0..count-1 in insertion (sequence) order and asks
 * the policy which one runs next. The remaining events stay pending: events
 * scheduled *by* the chosen callback at the same tick join the next batch,
 * so the policy sees every legal interleaving of same-tick work.
 *
 * Implementations must be deterministic functions of their own state (e.g.
 * a seeded RNG or a recorded trace) for runs to be reproducible.
 */
class SchedulePolicy
{
  public:
    virtual ~SchedulePolicy() = default;

    /**
     * Choose among @p count ready events (all at the earliest tick,
     * ordered by ascending sequence number).
     * @return Index in [0, count) of the event to run next.
     */
    virtual std::size_t chooseNext(std::size_t count) = 0;
};

/**
 * A time-ordered queue of callbacks driving the whole simulation.
 *
 * Components capture what they need in the callback; there is no Event class
 * hierarchy to subclass. Cancellation is supported through EventHandle.
 */
class EventQueue
{
  public:
    /**
     * Opaque ticket identifying a scheduled event, usable to cancel it.
     * Encodes (slot generation << 32 | slot index); a handle whose event
     * already ran or was cancelled goes stale and cancel() ignores it.
     */
    using EventHandle = std::uint64_t;

    EventQueue() { _ring.fill(Bucket{}); }
    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /// @name Keyed canonical ordering (sharded PDES mode; see DESIGN.md)
    /// @{
    /**
     * Switch the queue to keyed ordering for parallel-in-run simulation.
     *
     * In keyed mode every event's tie-break token is not a queue-local
     * insertion sequence but a *canonical key*:
     * (origin tile << 48) | per-origin-tile counter. Keys are globally
     * unique and — because each tile's counter is only ever advanced by
     * the shard that owns the tile — the (when, key) execution order is a
     * pure function of the simulated machine, identical for any shard
     * count. The calendar ring still serves the near-future window, but
     * bucket insertion is by canonical key rather than FIFO append (a
     * bucket holds exactly one tick's events, whose execution order is
     * the key order, not insertion order — see enqueueKeyedEntry).
     *
     * @param tile_seq Per-tile key counters, shared by all shard queues
     *        (each entry is written only by the owning shard's thread).
     */
    void
    enableKeyedOrder(std::vector<std::uint64_t>* tile_seq)
    {
        SBULK_ASSERT(!_policy, "SchedulePolicy requires serial mode");
        SBULK_ASSERT(empty(), "enable keyed ordering before scheduling");
        _keyed = true;
        _tileSeq = tile_seq;
    }

    bool keyed() const { return _keyed; }

    /**
     * Count dispatched events per execution tile into @p counts (keyed
     * mode only; null disables). Shard queues may share one vector: each
     * tile's entry is only ever written by the shard that owns the tile.
     * The canonical-order contract makes the counts a pure function of
     * the simulated machine — the same for every shard count and map —
     * which is what lets a warmup run's counts drive the balanced
     * partitioner deterministically (see balancedShardMap).
     */
    void
    collectTileCounts(std::vector<std::uint64_t>* counts)
    {
        SBULK_ASSERT(!counts || _keyed,
                     "tile counts require keyed ordering");
        _tileCounts = counts;
    }

    /**
     * Tile attribution for events scheduled outside any dispatch (system
     * construction): subsequent schedule() calls originate at @p tile.
     * During dispatch the attribution tracks the running event's tile.
     */
    void setExecTile(std::uint32_t tile) { _execTile = tile; }
    std::uint32_t execTile() const { return _execTile; }

    /** Allocate the next canonical key originating at @p tile. */
    std::uint64_t
    allocKey(std::uint32_t tile)
    {
        return (std::uint64_t(tile) << 48) | (*_tileSeq)[tile]++;
    }

    /**
     * Insert an event with an explicit canonical key and execution tile
     * (cross-tile schedules: network deliveries, window-boundary channel
     * injection). The key must come from allocKey() on the *originating*
     * tile's owner shard.
     */
    template <typename F>
    void
    injectKeyed(Tick when, std::uint64_t key, std::uint32_t exec_tile,
                F&& fn)
    {
        SBULK_ASSERT(_keyed, "injectKeyed on a serial queue");
        SBULK_ASSERT(when >= _now,
                     "keyed injection in the past: when=%llu now=%llu",
                     (unsigned long long)when, (unsigned long long)_now);
        std::uint32_t idx;
        if (!_free.empty()) {
            idx = _free.back();
            _free.pop_back();
        } else {
            idx = std::uint32_t(_slots.size());
            _slots.emplace_back();
        }
        Slot& s = _slots[idx];
        s.fn = std::forward<F>(fn);
        s.cancelled = false;
        s.execTile = exec_tile;
        enqueueKeyedEntry(idx, when, key);
        ++_live;
    }

    /** Earliest pending tick (kMaxTick when the queue is empty). */
    Tick
    headTick()
    {
        const Src src = peekSource();
        return src == Src::None ? kMaxTick : nextWhen(src);
    }

    /**
     * Execute every pending event with when < @p end (one conservative
     * lookahead window). Returns the number of events executed.
     */
    std::uint64_t
    runUntil(Tick end)
    {
        std::uint64_t executed = 0;
        while (true) {
            const Src src = peekSource();
            if (src == Src::None || nextWhen(src) >= end)
                break;
            dispatchSlot(popFrom(src));
            ++executed;
        }
        return executed;
    }

    /** Canonical key of the event currently dispatching (keyed mode). */
    std::uint64_t currentKey() const { return _curKey; }
    /** Per-event record sub-counter for metric journaling (keyed mode):
     *  monotone within one event's dispatch, reset at each dispatch. */
    std::uint32_t nextJournalSub() { return _journalSub++; }
    /// @}

    /**
     * Schedule @p fn to run at absolute time @p when.
     *
     * Accepts any void() callable; small trivially-copyable closures are
     * stored inline in the slab (see EventFn).
     *
     * @param when Absolute tick; must be >= now().
     * @param fn Callback to invoke.
     * @return Handle that can be passed to cancel().
     */
    template <typename F>
    EventHandle
    schedule(Tick when, F&& fn)
    {
        SBULK_ASSERT(when >= _now,
                     "scheduling in the past: when=%llu now=%llu",
                     (unsigned long long)when, (unsigned long long)_now);
        std::uint32_t idx;
        if (!_free.empty()) {
            idx = _free.back();
            _free.pop_back();
        } else {
            idx = std::uint32_t(_slots.size());
            _slots.emplace_back();
        }
        Slot& s = _slots[idx];
        s.fn = std::forward<F>(fn);
        s.cancelled = false;
        const EventHandle h = (EventHandle(s.gen) << 32) | idx;
        if (_keyed) {
            // Keyed mode: the creating event's tile stamps the key, and
            // locally-scheduled events always execute on the same tile
            // (cross-tile scheduling goes through the network).
            s.execTile = _execTile;
            enqueueKeyedEntry(idx, when, allocKey(_execTile));
        } else {
            enqueueEntry(idx, when, _nextSeq++);
        }
        ++_live;
        return h;
    }

    /** Schedule @p fn to run @p delta ticks from now. */
    template <typename F>
    EventHandle
    scheduleIn(Tick delta, F&& fn)
    {
        return schedule(_now + delta, std::forward<F>(fn));
    }

    /**
     * Cancel a previously-scheduled event.
     *
     * Exact and idempotent: cancelling a handle whose event already ran,
     * or cancelling the same handle twice, is a no-op (the generation
     * stored in the handle no longer matches the slot). The callback's
     * captures are released immediately.
     */
    void
    cancel(EventHandle h)
    {
        const std::uint32_t idx = std::uint32_t(h);
        if (idx >= _slots.size())
            return;
        Slot& s = _slots[idx];
        if (s.gen != std::uint32_t(h >> 32) || s.cancelled)
            return; // stale: already ran, recycled, or cancelled before
        s.cancelled = true;
        s.fn = nullptr;
        SBULK_ASSERT(_live > 0, "cancel accounting underflow");
        --_live;
    }

    /** Number of events scheduled but not yet run or cancelled. Exact:
     *  stale and repeated cancellations do not perturb the count. */
    std::size_t pending() const { return _live; }

    /** True when no runnable events remain. */
    bool empty() const { return _live == 0; }

    /**
     * Install (or clear, with nullptr) the same-tick tie-break policy.
     *
     * Not owned. Null restores the default insertion-order FIFO, which is
     * also the zero-overhead fast path. Install before running events —
     * switching policies mid-run changes which interleaving is explored
     * but is otherwise safe.
     */
    void
    setSchedulePolicy(SchedulePolicy* policy)
    {
        SBULK_ASSERT(!_keyed || !policy,
                     "schedule-exploration policies are serial-only");
        _policy = policy;
    }
    SchedulePolicy* schedulePolicy() const { return _policy; }

    /**
     * Run events in time order until the queue drains or @p limit is hit.
     *
     * @param limit Stop once now() would exceed this tick.
     * @return Number of events executed.
     */
    std::uint64_t
    run(Tick limit = kMaxTick)
    {
        std::uint64_t executed = 0;
        while (true) {
            const Src src = peekSource();
            if (src == Src::None || nextWhen(src) > limit)
                break;
            dispatchSlot(_policy ? popPolicyChoice(src) : popFrom(src));
            ++executed;
        }
        return executed;
    }

    /**
     * Run a single event (the earliest pending one; under a SchedulePolicy,
     * the policy's pick among the earliest).
     *
     * Defined inline (with the whole dispatch chain) so per-event drivers
     * like System::run compile down to one loop without cross-TU calls.
     *
     * @return false if the queue was empty.
     */
    bool
    step()
    {
        const Src src = peekSource();
        if (src == Src::None)
            return false;
        dispatchSlot(_policy ? popPolicyChoice(src) : popFrom(src));
        return true;
    }

  private:
    /** Ring window: events with when - _scanTick < kRingTicks live in the
     *  calendar; the rest overflow to the heap. Power of two; sized to
     *  cover every short-latency schedule the simulator issues while the
     *  bucket array (8 bytes each) stays cache-resident. */
    static constexpr Tick kRingTicks = 1024;
    /** Null link / bucket terminator for the intrusive slot lists. */
    static constexpr std::uint32_t kNilLink = 0xffffffffu;

    /**
     * One slab entry. The callback never moves while queued: both the ring
     * (which links slots by index) and the heap (which orders compact
     * copies of the key) leave the slab in place; it is only touched to
     * run, cancel, or recycle a callback. The ordering key (when, seq)
     * lives here so ring entries need no side storage.
     */
    struct Slot
    {
        EventFn fn;
        Tick when = 0;
        std::uint64_t seq = 0;
        std::uint32_t gen = 0;
        /** Next slot in the same ring bucket (kNilLink at the tail). */
        std::uint32_t next = kNilLink;
        /** Tile the event executes on (keyed mode only). */
        std::uint32_t execTile = 0;
        bool cancelled = false;
    };

    /**
     * A calendar bucket: FIFO list of slots scheduled at one tick.
     * Appends happen in schedule order, i.e. ascending sequence number, so
     * draining head-first is exactly the documented same-tick order.
     */
    struct Bucket
    {
        std::uint32_t head = kNilLink;
        std::uint32_t tail = kNilLink;
    };

    /**
     * Heap element: the full ordering key plus the owning slot. Keeping
     * the key in the entry makes sift comparisons touch only the
     * contiguous heap array — no pointer chase per comparison — and sift
     * moves shuffle 24-byte PODs instead of callbacks.
     */
    struct HeapEntry
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    /** Where the next event to dispatch currently lives. */
    enum class Src : std::uint8_t { None, Ring, Heap };

    /**
     * Heap order: earliest tick first; equal ticks by ascending sequence
     * number (insertion-order FIFO). This is the documented default
     * same-tick policy, not an implementation accident — replay traces and
     * the batch presented to a SchedulePolicy both depend on it.
     */
    static bool
    before(const HeapEntry& a, const HeapEntry& b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    /**
     * File the slot under its tick: calendar ring when the tick is within
     * the scan window, heap otherwise. The unsigned comparison also routes
     * when < _scanTick (possible only for re-queued policy-batch entries
     * after the scan overshot, see peekSource) to the heap, which is
     * always correct.
     *
     * Ring-bucket uniqueness: every ring entry's tick is in
     * [_scanTick, _scanTick + kRingTicks) — enforced here, preserved as
     * _scanTick only advances — so two entries in one bucket would have to
     * differ by a multiple of kRingTicks, which that half-open window
     * cannot contain.
     */
    void
    enqueueEntry(std::uint32_t idx, Tick when, std::uint64_t seq)
    {
        Slot& s = _slots[idx];
        s.when = when;
        s.seq = seq;
        if (when - _scanTick < kRingTicks) {
            s.next = kNilLink;
            Bucket& b = _ring[when & (kRingTicks - 1)];
            if (b.tail == kNilLink)
                b.head = idx;
            else
                _slots[b.tail].next = idx;
            b.tail = idx;
            ++_ringCount;
        } else {
            heapPush(HeapEntry{when, seq, idx});
        }
    }

    /**
     * Keyed-order counterpart of enqueueEntry. Same ring-vs-heap routing,
     * but the ring bucket is kept sorted by canonical key instead of
     * FIFO-appended: a bucket holds exactly one tick's events (uniqueness
     * argument above), and in keyed mode the required execution order
     * within a tick is the key order, not insertion order. Buckets average
     * a couple of entries, so the linear insert is cheap; the common cases
     * (empty bucket, key above the tail) are O(1). Keys are globally
     * unique, so no equal-key tie exists.
     */
    void
    enqueueKeyedEntry(std::uint32_t idx, Tick when, std::uint64_t key)
    {
        Slot& s = _slots[idx];
        s.when = when;
        s.seq = key;
        if (when - _scanTick < kRingTicks) {
            s.next = kNilLink;
            Bucket& b = _ring[when & (kRingTicks - 1)];
            if (b.tail == kNilLink) {
                b.head = b.tail = idx;
            } else if (_slots[b.tail].seq < key) {
                _slots[b.tail].next = idx;
                b.tail = idx;
            } else {
                std::uint32_t prev = kNilLink;
                std::uint32_t cur = b.head;
                while (cur != kNilLink && _slots[cur].seq < key) {
                    prev = cur;
                    cur = _slots[cur].next;
                }
                s.next = cur;
                if (prev == kNilLink)
                    b.head = idx;
                else
                    _slots[prev].next = idx;
            }
            ++_ringCount;
        } else {
            heapPush(HeapEntry{when, key, idx});
        }
    }

    /** Unlink and return the head slot of @p b (must be non-empty). */
    std::uint32_t
    ringPopHead(Bucket& b)
    {
        const std::uint32_t idx = b.head;
        b.head = _slots[idx].next;
        if (b.head == kNilLink)
            b.tail = kNilLink;
        --_ringCount;
        return idx;
    }

    /**
     * Recycle cancelled entries surfacing at either structure's front and
     * report where the earliest pending event lives. Advances _scanTick to
     * the ring's first live bucket, but never past the heap top's tick:
     * the heap event runs first anyway, and keeping the cursor low lets
     * events its callback schedules still use the ring.
     */
    Src
    peekSource()
    {
        while (!_heap.empty() && _slots[_heap[0].slot].cancelled)
            freeSlot(heapPopTop().slot);
        const Tick heap_when = _heap.empty() ? kMaxTick : _heap[0].when;

        while (_ringCount > 0 && _scanTick <= heap_when) {
            Bucket& b = _ring[_scanTick & (kRingTicks - 1)];
            if (b.head == kNilLink) {
                ++_scanTick;
                continue;
            }
            if (_slots[b.head].cancelled) {
                freeSlot(ringPopHead(b));
                continue;
            }
            // Live ring head at _scanTick; earlier than the heap top, or
            // tied on tick and decided by sequence number.
            if (_scanTick < heap_when ||
                _slots[b.head].seq < _heap[0].seq) {
                return Src::Ring;
            }
            return Src::Heap;
        }
        return _heap.empty() ? Src::None : Src::Heap;
    }

    /** Tick of the event peekSource() selected (must not be Src::None). */
    Tick
    nextWhen(Src src) const
    {
        return src == Src::Ring ? _scanTick : _heap[0].when;
    }

    /** Remove and return the entry peekSource() selected. */
    HeapEntry
    popFrom(Src src)
    {
        if (src == Src::Heap)
            return heapPopTop();
        Bucket& b = _ring[_scanTick & (kRingTicks - 1)];
        const std::uint32_t idx = ringPopHead(b);
        return HeapEntry{_slots[idx].when, _slots[idx].seq, idx};
    }

    void
    heapPush(HeapEntry e)
    {
        std::size_t pos = _heap.size();
        _heap.push_back(e);
        while (pos > 0) {
            const std::size_t parent = (pos - 1) / 2;
            if (!before(e, _heap[parent]))
                break;
            _heap[pos] = _heap[parent];
            pos = parent;
        }
        _heap[pos] = e;
    }

    /** Remove and return the top entry (heap must be non-empty). */
    HeapEntry
    heapPopTop()
    {
        const HeapEntry top = _heap[0];
        const HeapEntry last = _heap.back();
        _heap.pop_back();
        const std::size_t n = _heap.size();
        if (n > 0) {
            std::size_t pos = 0;
            while (true) {
                std::size_t child = 2 * pos + 1;
                if (child >= n)
                    break;
                if (child + 1 < n && before(_heap[child + 1], _heap[child]))
                    ++child;
                if (!before(_heap[child], last))
                    break;
                _heap[pos] = _heap[child];
                pos = child;
            }
            _heap[pos] = last;
        }
        return top;
    }

    /** Recycle @p slot: bump the generation so outstanding handles go
     *  stale, and return it to the free list. */
    void
    freeSlot(std::uint32_t slot)
    {
        Slot& s = _slots[slot];
        s.fn = nullptr;
        s.cancelled = false;
        ++s.gen;
        _free.push_back(slot);
    }

    /**
     * Pop, under the installed policy, the event to run next. @p src is
     * peekSource()'s result (not None). Leaves every other ready event
     * pending and returns the chosen entry (already removed).
     */
    HeapEntry popPolicyChoice(Src src);

    /** Run the popped entry @p e (advances time, executes, recycles). */
    void
    dispatchSlot(HeapEntry e)
    {
        // Move the callback out of the slab first: it may schedule new
        // events, which can grow _slots and invalidate references.
        EventFn fn = std::move(_slots[e.slot].fn);
        if (_keyed) {
            _execTile = _slots[e.slot].execTile;
            _curKey = e.seq;
            _journalSub = 0;
            if (_tileCounts)
                ++(*_tileCounts)[_execTile];
        }
        freeSlot(e.slot);
        SBULK_ASSERT(_live > 0, "dispatch accounting underflow");
        --_live;
        SBULK_ASSERT(e.when >= _now, "event queue went back in time");
        _now = e.when;
        // With the ring empty the cursor may resynchronize to any tick no
        // event precedes; jumping to the dispatch tick keeps short-delta
        // schedules from the callback inside the ring window after a long
        // heap-only idle gap (a stale low cursor would silently route
        // everything to the heap).
        if (_ringCount == 0)
            _scanTick = e.when;
        fn();
    }

    std::vector<Slot> _slots;
    std::vector<HeapEntry> _heap;
    std::vector<std::uint32_t> _free;
    /** Scratch for popPolicyChoice (avoids a per-batch allocation). */
    std::vector<HeapEntry> _batch;
    /** Calendar buckets, indexed by tick & (kRingTicks - 1). */
    std::array<Bucket, kRingTicks> _ring;
    /** Entries currently linked in the ring (cancelled ones included
     *  until they surface and are recycled). */
    std::size_t _ringCount = 0;
    /**
     * Ring scan cursor: no ring entry's tick is below it, and every ring
     * entry's tick is within kRingTicks of it. Monotone except for the
     * empty-ring resync in dispatchSlot.
     */
    Tick _scanTick = 0;
    SchedulePolicy* _policy = nullptr;
    Tick _now = 0;
    std::uint64_t _nextSeq = 0;
    std::size_t _live = 0;
    /// @name Keyed canonical ordering state (sharded mode)
    /// @{
    bool _keyed = false;
    /** Shared per-tile key counters (owner-shard-written). */
    std::vector<std::uint64_t>* _tileSeq = nullptr;
    /** Per-tile dispatch counters (warmup profiling; usually null). */
    std::vector<std::uint64_t>* _tileCounts = nullptr;
    /** Tile attribution of the currently-running (or constructing) code. */
    std::uint32_t _execTile = 0;
    /** Canonical key of the dispatching event. */
    std::uint64_t _curKey = 0;
    /** Per-dispatch journal sub-counter. */
    std::uint32_t _journalSub = 0;
    /// @}
};

} // namespace sbulk

#endif // SBULK_SIM_EVENT_QUEUE_HH
