/**
 * @file
 * Deterministic discrete-event simulation kernel.
 *
 * All simulator components share one EventQueue. Events are plain callbacks
 * scheduled at an absolute Tick. Same-tick ordering is an explicit,
 * documented policy rather than an accident of the underlying container:
 *
 *  - Default (no SchedulePolicy installed): insertion-order FIFO. Every
 *    event carries a monotonically increasing sequence number, and ties at
 *    the same tick run in ascending sequence order. A simulation with the
 *    same inputs therefore always replays identically.
 *  - With a SchedulePolicy installed, the policy chooses which of the
 *    ready (earliest-tick) events runs next. This is the hook the
 *    schedule-exploration checker (src/check/) uses to enumerate distinct
 *    legal interleavings and to replay a recorded one byte-for-byte.
 */

#ifndef SBULK_SIM_EVENT_QUEUE_HH
#define SBULK_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace sbulk
{

/**
 * Pluggable same-tick tie-break policy.
 *
 * When several pending events share the earliest tick, the queue presents
 * them as a batch indexed 0..count-1 in insertion (sequence) order and asks
 * the policy which one runs next. The remaining events stay pending: events
 * scheduled *by* the chosen callback at the same tick join the next batch,
 * so the policy sees every legal interleaving of same-tick work.
 *
 * Implementations must be deterministic functions of their own state (e.g.
 * a seeded RNG or a recorded trace) for runs to be reproducible.
 */
class SchedulePolicy
{
  public:
    virtual ~SchedulePolicy() = default;

    /**
     * Choose among @p count ready events (all at the earliest tick,
     * ordered by ascending sequence number).
     * @return Index in [0, count) of the event to run next.
     */
    virtual std::size_t chooseNext(std::size_t count) = 0;
};

/**
 * A time-ordered queue of callbacks driving the whole simulation.
 *
 * Components capture what they need in the callback; there is no Event class
 * hierarchy to subclass. Cancellation is supported through EventHandle.
 */
class EventQueue
{
  public:
    /** Opaque ticket identifying a scheduled event, usable to cancel it. */
    using EventHandle = std::uint64_t;

    EventQueue() = default;
    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     *
     * @param when Absolute tick; must be >= now().
     * @param fn Callback to invoke.
     * @return Handle that can be passed to cancel().
     */
    EventHandle
    schedule(Tick when, std::function<void()> fn)
    {
        SBULK_ASSERT(when >= _now,
                     "scheduling in the past: when=%llu now=%llu",
                     (unsigned long long)when, (unsigned long long)_now);
        EventHandle h = _nextSeq++;
        _heap.push(Entry{when, h, std::move(fn)});
        return h;
    }

    /** Schedule @p fn to run @p delta ticks from now. */
    EventHandle
    scheduleIn(Tick delta, std::function<void()> fn)
    {
        return schedule(_now + delta, std::move(fn));
    }

    /**
     * Cancel a previously-scheduled event.
     *
     * Must only be called for events that have not run yet (the caller —
     * e.g. a timeout being descheduled — is in a position to know).
     * Cancelling the same handle twice is a no-op.
     */
    void cancel(EventHandle h) { _cancelled.insert(h); }

    /** Number of events scheduled but not yet run or cancelled. */
    std::size_t pending() const { return _heap.size() - _cancelled.size(); }

    /** True when no runnable events remain. */
    bool empty() const { return pending() == 0; }

    /**
     * Install (or clear, with nullptr) the same-tick tie-break policy.
     *
     * Not owned. Null restores the default insertion-order FIFO, which is
     * also the zero-overhead fast path. Install before running events —
     * switching policies mid-run changes which interleaving is explored
     * but is otherwise safe.
     */
    void setSchedulePolicy(SchedulePolicy* policy) { _policy = policy; }
    SchedulePolicy* schedulePolicy() const { return _policy; }

    /**
     * Run events in time order until the queue drains or @p limit is hit.
     *
     * @param limit Stop once now() would exceed this tick.
     * @return Number of events executed.
     */
    std::uint64_t run(Tick limit = kMaxTick);

    /**
     * Run a single event (the earliest pending one; under a SchedulePolicy,
     * the policy's pick among the earliest).
     * @return false if the queue was empty.
     */
    bool step();

  private:
    struct Entry
    {
        Tick when;
        EventHandle seq;
        std::function<void()> fn;
    };

    /**
     * Heap order: earliest tick first; equal ticks by ascending sequence
     * number (insertion-order FIFO). This is the documented default
     * same-tick policy, not an implementation accident — replay traces and
     * the batch presented to a SchedulePolicy both depend on it.
     */
    struct Later
    {
        bool
        operator()(const Entry& a, const Entry& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Drop cancelled entries off the top of the heap. */
    void skimCancelled();

    /**
     * Pop, under the installed policy, the event to run next. The heap
     * must be non-empty and skimmed. Leaves every other ready event
     * pending and returns the chosen entry.
     */
    Entry popPolicyChoice();

    /** Run @p e (advances time, executes, counts). */
    void dispatch(Entry e);

    std::priority_queue<Entry, std::vector<Entry>, Later> _heap;
    std::unordered_set<EventHandle> _cancelled;
    SchedulePolicy* _policy = nullptr;
    Tick _now = 0;
    EventHandle _nextSeq = 0;
};

} // namespace sbulk

#endif // SBULK_SIM_EVENT_QUEUE_HH
