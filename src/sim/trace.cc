#include "sim/trace.hh"

#include <cstdio>
#include <iostream>

namespace sbulk
{
namespace trace
{

namespace
{
std::array<bool, std::size_t(Cat::Count)> gEnabled{};
std::ostream* gSink = nullptr;

std::ostream&
sink()
{
    return gSink ? *gSink : std::cerr;
}
} // namespace

const char*
catName(Cat cat)
{
    switch (cat) {
      case Cat::Commit: return "commit";
      case Cat::Group: return "group";
      case Cat::Inv: return "inv";
      case Cat::Squash: return "squash";
      case Cat::Read: return "read";
      case Cat::Count: break;
    }
    return "?";
}

Cat
parseCat(const std::string& name)
{
    for (std::size_t c = 0; c < std::size_t(Cat::Count); ++c)
        if (name == catName(Cat(c)))
            return Cat(c);
    return Cat::Count;
}

bool
enabled(Cat cat)
{
    return gEnabled[std::size_t(cat)];
}

void
enable(Cat cat, bool on)
{
    gEnabled[std::size_t(cat)] = on;
}

bool
enableList(const std::string& list)
{
    if (list == "all") {
        for (std::size_t c = 0; c < std::size_t(Cat::Count); ++c)
            enable(Cat(c));
        return true;
    }
    bool ok = true;
    std::size_t pos = 0;
    while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string name =
            list.substr(pos, comma == std::string::npos ? std::string::npos
                                                        : comma - pos);
        if (!name.empty()) {
            const Cat cat = parseCat(name);
            if (cat == Cat::Count)
                ok = false;
            else
                enable(cat);
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return ok;
}

void
disableAll()
{
    gEnabled.fill(false);
}

void
setSink(std::ostream* new_sink)
{
    gSink = new_sink;
}

void
print(Cat cat, Tick now, const char* fmt, ...)
{
    char body[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(body, sizeof body, fmt, ap);
    va_end(ap);
    char line[600];
    std::snprintf(line, sizeof line, "%10llu: %-6s: %s\n",
                  (unsigned long long)now, catName(cat), body);
    sink() << line;
}

} // namespace trace
} // namespace sbulk
