/**
 * @file
 * Minimal deterministic work-sharing for the experiment layer.
 *
 * The simulator core is single-threaded by construction: one EventQueue,
 * one System, no shared mutable state between runs. A sweep over N
 * independent (app, protocol, procs) or seed configurations is therefore
 * embarrassingly parallel — each worker owns a private System — and the
 * only rule is that results be merged by index so output is byte-identical
 * at any job count.
 */

#ifndef SBULK_SIM_PARALLEL_HH
#define SBULK_SIM_PARALLEL_HH

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace sbulk
{

/**
 * Alignment granule for cross-thread hot state (barrier nodes, SPSC ring
 * cursors, per-shard clock slots): one slot per cache line so two threads
 * never false-share a line they both write at window rate.
 */
inline constexpr std::size_t kCacheLineBytes = 64;

/** What `--jobs 0` (auto) resolves to: one worker per hardware thread. */
inline unsigned
defaultJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

namespace detail
{
/** Threads each simulation consumes beyond its runner (see
 *  setShardThreadFactor). */
inline std::atomic<unsigned>&
shardFactorRef()
{
    static std::atomic<unsigned> f{1};
    return f;
}
/** True while the calling thread is inside a parallelFor worker. */
inline thread_local bool tls_in_parallel_region = false;
} // namespace detail

/**
 * Declare that each unit of work run under parallelFor spins up @p shards
 * simulation threads (`--shards`): parallelFor clamps its worker count so
 * runner workers x shard threads never exceeds defaultJobs(). Tools call
 * this once after parsing --shards; 1 (the default) restores the full
 * worker budget.
 */
inline void
setShardThreadFactor(unsigned shards)
{
    detail::shardFactorRef().store(shards ? shards : 1,
                                   std::memory_order_relaxed);
}

/** Worker budget parallelFor grants after the shard-factor clamp. */
inline unsigned
clampedJobs(unsigned jobs)
{
    const unsigned factor =
        detail::shardFactorRef().load(std::memory_order_relaxed);
    const unsigned budget = std::max(1u, defaultJobs() / factor);
    return std::min(jobs, budget);
}

/**
 * Invoke body(i) for every i in [0, n), spread over up to @p jobs threads.
 *
 * Each index runs exactly once, on exactly one thread; the call returns
 * after all indices completed. With jobs <= 1 (or a single item) the loop
 * runs inline on the caller — the serial and parallel modes execute the
 * same body, so a caller that stores results by index produces identical
 * output either way.
 *
 * The body must not touch shared mutable state except through its own
 * index slice (e.g. results[i]): the simulator gives each index a private
 * EventQueue/System, and this helper adds no synchronization beyond the
 * work-stealing counter and the final join.
 */
template <typename Body>
void
parallelFor(std::size_t n, unsigned jobs, Body&& body)
{
    // Oversubscription guards: clamp the worker count against the shard
    // thread factor (runner workers x shard threads <= defaultJobs()),
    // and run nested parallelFor calls inline — a body that itself fans
    // out would otherwise multiply thread counts unchecked.
    jobs = clampedJobs(jobs);
    if (jobs <= 1 || n <= 1 || detail::tls_in_parallel_region) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
        detail::tls_in_parallel_region = true;
        for (std::size_t i = next.fetch_add(1); i < n;
             i = next.fetch_add(1)) {
            body(i);
        }
        detail::tls_in_parallel_region = false;
    };
    const unsigned k = unsigned(std::min<std::size_t>(jobs, n));
    std::vector<std::thread> threads;
    threads.reserve(k);
    for (unsigned t = 0; t < k; ++t)
        threads.emplace_back(worker);
    for (auto& th : threads)
        th.join();
}

} // namespace sbulk

#endif // SBULK_SIM_PARALLEL_HH
