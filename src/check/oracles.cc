#include "check/oracles.hh"

#include <algorithm>

#include "chunk/chunk.hh"
#include "sig/signature.hh"
#include "sim/event_queue.hh"

namespace sbulk
{
namespace check
{

namespace
{

std::string
idStr(const CommitId& id)
{
    return "(" + std::to_string(id.tag.proc) + "," +
           std::to_string(id.tag.seq) + ")#" + std::to_string(id.attempt);
}

std::string
tagStr(const ChunkTag& tag)
{
    return "(" + std::to_string(tag.proc) + "," + std::to_string(tag.seq) +
           ")";
}

} // namespace

void
OracleSuite::report(const char* oracle, std::string detail)
{
    _violations.push_back(Violation{oracle, std::move(detail), now()});
}

Tick
OracleSuite::now() const
{
    return _eq ? _eq->now() : 0;
}

// ------------------------------------------------------- commit uniqueness

void
OracleSuite::onCommitRequested(NodeId proc, const CommitId& id,
                               const Chunk& chunk)
{
    (void)proc;
    (void)chunk;
    AttemptState& st = _attempts[id];
    if (st.requested)
        report("uniqueness", "attempt " + idStr(id) + " requested twice");
    st.requested = true;
}

void
OracleSuite::onCommitSuccess(NodeId proc, const CommitId& id)
{
    (void)proc;
    AttemptState& st = _attempts[id];
    if (st.succeeded)
        report("uniqueness", "attempt " + idStr(id) + " succeeded twice");
    if (st.failed || st.aborted) {
        report("uniqueness", "attempt " + idStr(id) +
                                 " succeeded after failing/aborting");
    }
    st.succeeded = true;
    if (!_tagsSucceeded.insert(id.tag).second) {
        report("uniqueness",
               "chunk " + tagStr(id.tag) + " committed twice (duplicate "
               "commit across attempts)");
    }
}

void
OracleSuite::onCommitFailure(NodeId proc, const CommitId& id)
{
    (void)proc;
    AttemptState& st = _attempts[id];
    if (st.succeeded) {
        report("uniqueness",
               "attempt " + idStr(id) + " failed after succeeding");
    }
    st.failed = true;
}

void
OracleSuite::onCommitAborted(NodeId proc, const CommitId& id)
{
    (void)proc;
    AttemptState& st = _attempts[id];
    if (st.succeeded) {
        report("uniqueness",
               "attempt " + idStr(id) + " aborted after succeeding");
    }
    st.aborted = true;
}

// -------------------------------------------------------- serializability

std::uint64_t
OracleSuite::versionOf(Addr line) const
{
    auto it = _writers.find(line);
    return it == _writers.end() ? 0 : it->second.size();
}

bool
OracleSuite::benignSince(Addr line, std::uint64_t since, NodeId proc,
                         std::uint64_t my_serial) const
{
    auto it = _writers.find(line);
    if (it == _writers.end())
        return true;
    const auto& log = it->second;
    for (std::size_t v = since; v < log.size(); ++v) {
        // Same-processor writes are benign: a core's younger chunk reads
        // its own older chunk's forwarded data, and every protocol orders
        // same-core chunks in program order. Writes serialized *after*
        // this chunk's own serialization point are benign too: they are
        // logically later and merely completed first (BulkSC's grant /
        // fan-out race).
        if (log[v].proc != proc && log[v].serial < my_serial)
            return false;
    }
    return true;
}

std::uint64_t
OracleSuite::serialFor(const ChunkTag& tag)
{
    auto [it, fresh] = _serialOf.try_emplace(tag, 0);
    if (fresh)
        it->second = ++_serialCounter;
    return it->second;
}

std::uint64_t
OracleSuite::takeSerial(const ChunkTag& tag)
{
    const std::uint64_t serial = serialFor(tag);
    _serialOf.erase(tag);
    return serial;
}

void
OracleSuite::onCommitSerialized(NodeId proc, const CommitId& id)
{
    (void)proc;
    _serialOf.insert_or_assign(id.tag, ++_serialCounter);
}

void
OracleSuite::onChunkRead(NodeId proc, const ChunkTag& tag, Addr line)
{
    (void)proc;
    _reads[tag].try_emplace(line, versionOf(line));
}

void
OracleSuite::onLineCommitted(NodeId dir, Addr line, const CommitId& id)
{
    // Writes are published when the home directory makes them visible,
    // not when the committer retires: a read between the two instants
    // fetches the new data and must snapshot the new version.
    (void)dir;
    _writers[line].push_back(
        WriterRec{id.tag.proc, serialFor(id.tag)});
}

void
OracleSuite::onChunkCommitted(NodeId proc, const ChunkTag& tag,
                              const std::vector<Addr>& write_lines, Tick when)
{
    if (!_tagsRetired.insert(tag).second) {
        report("uniqueness",
               "core retired chunk " + tagStr(tag) + " twice");
    }

    const std::uint64_t serial = takeSerial(tag);
    auto it = _reads.find(tag);
    if (it != _reads.end()) {
        for (const auto& [line, read_ver] : it->second) {
            if (std::find(write_lines.begin(), write_lines.end(), line) !=
                write_lines.end()) {
                continue; // own write: read-your-writes is fine
            }
            const std::uint64_t cur = versionOf(line);
            if (cur != read_ver &&
                !benignSince(line, read_ver, proc, serial)) {
                std::string writers;
                for (std::uint64_t v = read_ver; v < cur; ++v) {
                    const WriterRec& w = _writers.at(line)[v];
                    writers += " proc" + std::to_string(w.proc) + "@s" +
                               std::to_string(w.serial);
                }
                report("serializability",
                       "chunk " + tagStr(tag) + " (serial " +
                           std::to_string(serial) +
                           ") committed at tick " + std::to_string(when) +
                           " having read line " + std::to_string(line) +
                           " at version " + std::to_string(read_ver) +
                           ", overwritten since (now " +
                           std::to_string(cur) + ") by" + writers);
            }
        }
        _reads.erase(it);
    }
    ++_commitsChecked;
}

// -------------------------------------------------- squash justification

void
OracleSuite::onChunkSquashed(NodeId proc, const Chunk& victim,
                             SquashReason why, const ChunkTag& committer,
                             const Signature* commit_w,
                             const std::vector<Addr>* commit_lines)
{
    (void)proc;
    _reads.erase(victim.tag());
    _serialOf.erase(victim.tag());

    if (why != SquashReason::Conflict)
        return; // cascades and protocol kills carry their own justification

    bool justified = false;
    if (commit_w != nullptr) {
        // Signature protocols: any R/W-signature intersection justifies
        // the squash (aliasing included — the signatures did intersect).
        justified = victim.rSig().intersects(*commit_w) ||
                    victim.wSig().intersects(*commit_w);
    } else if (commit_lines != nullptr) {
        justified = victim.trulyConflictsWith(*commit_lines);
    }
    if (!justified) {
        report("squash-conflict",
               "chunk " + tagStr(victim.tag()) + " squashed by commit of " +
                   tagStr(committer) +
                   " without any read/write-set intersection");
    }
}

// ----------------------------------------------------- exactly one winner

void
OracleSuite::onGroupFormed(NodeId dir, const CommitId& id,
                           const NodeSet& g_vec)
{
    (void)dir;
    (void)g_vec;
    _groupsFormed.insert(id);
}

void
OracleSuite::onGroupFailed(NodeId dir, const CommitId& id,
                           GroupFailReason why, const CommitId& winner)
{
    (void)dir;
    if (why == GroupFailReason::Collision)
        _collisions.emplace_back(id, winner);
}

// ----------------------------------------------------------------- final

void
OracleSuite::finalize(bool completed, bool protocol_quiescent)
{
    if (completed && !protocol_quiescent) {
        report("quiescence",
               "run completed but a directory/agent still holds protocol "
               "state (leaked CST entry, queue slot, or arbiter record)");
    }

    if (completed) {
        for (const auto& [id, st] : _attempts) {
            if (st.requested && !st.resolved()) {
                report("uniqueness", "attempt " + idStr(id) +
                                         " never resolved (lost commit)");
            }
        }
    }

    // "At least one of a set of colliding groups forms": walk the
    // loser->winner edges restricted to attempts that never formed; a
    // cycle means the collision set has no survivor.
    std::unordered_map<CommitId, std::vector<CommitId>> edges;
    for (const auto& [loser, winner] : _collisions) {
        if (_groupsFormed.count(loser))
            continue; // raced: the "loser" formed at another module anyway
        edges[loser].push_back(winner);
    }
    // Iterative colored DFS; gray-hit = cycle.
    std::unordered_map<CommitId, int> color; // 0 white, 1 gray, 2 black
    for (const auto& [start, unused] : edges) {
        (void)unused;
        if (color[start] != 0)
            continue;
        std::vector<std::pair<CommitId, std::size_t>> stack;
        stack.emplace_back(start, 0);
        color[start] = 1;
        while (!stack.empty()) {
            auto& [node, next] = stack.back();
            auto eit = edges.find(node);
            if (eit == edges.end() || next >= eit->second.size()) {
                color[node] = 2;
                stack.pop_back();
                continue;
            }
            const CommitId succ = eit->second[next++];
            if (_groupsFormed.count(succ) || !edges.count(succ))
                continue; // chain ends at a formed (or non-colliding) group
            int& c = color[succ];
            if (c == 1) {
                report("one-winner",
                       "collision cycle: groups " + idStr(node) + " and " +
                           idStr(succ) +
                           " each failed the other; no colliding group "
                           "formed");
                c = 2;
                continue;
            }
            if (c == 0) {
                c = 1;
                stack.emplace_back(succ, 0);
            }
        }
    }
}

} // namespace check
} // namespace sbulk
