#include "check/replay.hh"

#include <memory>

#include "fault/liveness.hh"
#include "fault/transport.hh"
#include "workload/synthetic.hh"

namespace sbulk
{
namespace check
{

namespace
{

/** Conflict-heavy workload: tiny footprint, hot shared lines, no phasing. */
SyntheticParams
checkWorkload(std::uint64_t seed)
{
    SyntheticParams p;
    p.memFraction = 0.5;
    p.writeFraction = 0.5;
    p.privatePages = 2;
    p.sharedPages = 4;
    p.sharedBlocks = 8;
    p.sharedFraction = 0.5;
    p.sharedWriteFraction = 0.5;
    p.zipfAlpha = 0.9;
    p.spatialRunMean = 2.0;
    p.accessesPerLine = 1.0;
    p.phaseInstrs = 0; // unphased: writers and readers race freely
    p.hotLines = 4;
    p.hotFraction = 0.05;
    p.seed = seed;
    return p;
}

/**
 * Build the system, attach @p sched + @p suite, and drive the event queue
 * manually to completion / deadlock / tick budget.
 */
template <typename Scheduler>
CheckResult
drive(const CheckConfig& cfg, Scheduler& make_scheduler)
{
    SystemConfig sys_cfg;
    sys_cfg.numProcs = cfg.procs;
    sys_cfg.protocol = cfg.protocol;
    sys_cfg.directNetwork = true; // fixed latency: the FIFO clamp's model
    sys_cfg.core.chunkInstrs = cfg.chunkInstrs;
    sys_cfg.core.chunksToRun = cfg.chunksPerCore;
    sys_cfg.proto.sbBreak = cfg.sbBreak;

    OracleSuite suite;
    fault::LivenessMonitor monitor;
    ObserverChain observers{&suite};
    const bool faulted = cfg.faults.enabled();
    if (faulted) {
        // Arm the recovery layer the transport-level faults are aimed at:
        // seeded capped-exponential retry backoff, starvation escalation,
        // and per-request watchdogs that kick the transport into
        // retransmitting (dedup makes the kick idempotent).
        observers.add(&monitor);
        sys_cfg.proto.expBackoff = true;
        sys_cfg.proto.backoffSeed = cfg.faults.seed;
        if (cfg.faults.watchdog)
            sys_cfg.proto.watchdogTimeout = Tick(cfg.faults.rxCap) * 2;
    }
    // Without faults the suite is attached directly — identical plumbing
    // to the pre-fault checker, so unfaulted traces stay byte-identical.
    sys_cfg.observer =
        faulted ? static_cast<ProtocolObserver*>(&observers) : &suite;

    const SyntheticParams params = checkWorkload(cfg.seed);
    std::vector<std::unique_ptr<ThreadStream>> streams;
    for (NodeId n = 0; n < cfg.procs; ++n) {
        streams.push_back(std::make_unique<SyntheticStream>(
            params, n, cfg.procs, sys_cfg.mem.l2.lineBytes,
            sys_cfg.mem.pageBytes));
    }

    System sys(sys_cfg, std::move(streams));
    suite.setClock(&sys.eventQueue());
    monitor.setClock(&sys.eventQueue());

    auto sched = make_scheduler(sys.eventQueue());
    sys.eventQueue().setSchedulePolicy(&sched);
    sys.network().setDeliveryJitter(sched.jitterFn());

    std::unique_ptr<fault::FaultTransport> transport;
    if (faulted) {
        transport = std::make_unique<fault::FaultTransport>(
            sys.network(), cfg.faults, /*stream_salt=*/cfg.seed);
        sys.network().setTransport(transport.get());
        // ARQ restores per-channel order at the receiver, so the wire may
        // reorder; without ARQ the transport clamps delays to keep each
        // channel FIFO and the network-level assertion stays armed.
        sys.network().allowChannelReorder(cfg.faults.arq);
    }

    // run(0) starts the cores and returns without stepping; from here the
    // checker owns the loop so deadlock is an observation, not a panic.
    sys.run(0);

    CheckResult r;
    EventQueue& eq = sys.eventQueue();
    while (!sys.allCoresDone()) {
        if (eq.now() > cfg.tickLimit) {
            r.timedOut = true;
            break;
        }
        if (!eq.step()) {
            r.deadlocked = true;
            break;
        }
    }
    r.completed = sys.allCoresDone();
    if (r.completed) {
        // Drain in-flight cleanup traffic (occupancy releases, commit_done
        // fan-out, ...) so quiescence is judged on a settled system.
        while (eq.now() <= cfg.tickLimit && eq.step()) {
        }
    }
    r.endTick = eq.now();

    suite.finalize(r.completed, sys.protocolQuiescent());
    r.violations = suite.violations();
    r.commitsChecked = suite.commitsChecked();
    if (r.deadlocked) {
        r.violations.push_back(Violation{
            "deadlock",
            "event queue drained with unfinished cores", eq.now()});
    }
    if (r.timedOut) {
        r.violations.push_back(Violation{
            "livelock",
            "run exceeded the tick budget (" +
                std::to_string(cfg.tickLimit) + " ticks)",
            eq.now()});
    }
    if (faulted) {
        // The no-stuck-commit liveness oracle plus transport quiescence:
        // every loss must have been repaired by the end of a drained run.
        monitor.finalize(transport.get());
        for (const fault::StuckCommit& s : monitor.stuck()) {
            r.violations.push_back(Violation{"liveness", s.diagnosis,
                                             s.since});
        }
        if (r.completed && !transport->quiescent()) {
            r.violations.push_back(Violation{
                "transport",
                "unrecovered in-flight state after drain: " +
                    transport->describePending(),
                eq.now()});
        }
        r.faultsInjected = transport->injected().size();
        r.retransmissions = transport->stats().retransmissions.value();
        r.dupsDropped = transport->stats().dupsDropped.value();
        r.watchdogFires = sys.metrics().watchdogFires.value();
        r.stuckCommits = monitor.stuck().size();
        r.recoveryLatencyMean = transport->stats().recoveryLatency.mean();
    }

    r.trace = sched.trace();
    r.traceHash = r.trace.hash();

    // Detach before the scheduler (and transport) go out of scope.
    sys.eventQueue().setSchedulePolicy(nullptr);
    sys.network().setDeliveryJitter(nullptr);
    sys.network().setTransport(nullptr);
    return r;
}

} // namespace

CheckResult
runSchedule(const CheckConfig& cfg)
{
    auto make = [&cfg](const EventQueue& eq) {
        return RandomScheduler(cfg.seed, cfg.maxJitter, eq);
    };
    return drive(cfg, make);
}

CheckResult
replaySchedule(const CheckConfig& cfg, const ScheduleTrace& trace,
               std::size_t prefix)
{
    auto make = [&trace, prefix](const EventQueue& eq) {
        return ReplayScheduler(trace, prefix, eq);
    };
    return drive(cfg, make);
}

ShrinkResult
shrinkFailure(const CheckConfig& cfg, const ScheduleTrace& trace)
{
    // Smallest prefix in [0, N] whose replay still violates. Violation
    // presence is not strictly monotone in the prefix, so the binary
    // search is a heuristic — but the returned result always comes from
    // a real replay of the returned prefix.
    std::size_t lo = 0;
    std::size_t hi = trace.decisions.size();
    ShrinkResult best{hi, replaySchedule(cfg, trace, hi)};
    if (best.result.ok())
        return best; // full replay no longer fails; report it as-is

    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        CheckResult r = replaySchedule(cfg, trace, mid);
        if (!r.ok()) {
            hi = mid;
            best = ShrinkResult{mid, std::move(r)};
        } else {
            lo = mid + 1;
        }
    }
    return best;
}

} // namespace check
} // namespace sbulk
