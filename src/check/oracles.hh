/**
 * @file
 * Protocol invariant oracles for the model checker (see CHECKING.md).
 *
 * OracleSuite is a ProtocolObserver that watches every protocol event of a
 * run and accumulates Violations instead of asserting, so a seed sweep can
 * keep going after a failure and report all of them. The invariants:
 *
 *  - **Commit serializability** (paper Section 3.1): a committed chunk
 *    must not have read a line that another processor's commit overwrote
 *    between the read and this chunk's commit — the same version-vector
 *    argument as ConsistencyChecker, at the observer layer.
 *  - **Exactly one winner** (Section 3.2.3, "at least one of a set of
 *    colliding groups forms"): collision losses form loser->winner edges;
 *    a cycle among attempts that never formed means every group in the
 *    collision died and the guarantee is broken.
 *  - **No lost / duplicate commits** (Section 3.1): each commit attempt
 *    resolves at most once as a success and never both succeeds and
 *    fails; a chunk tag commits at most once; on a completed run no
 *    attempt is left unresolved.
 *  - **Squash implies conflict** (Section 3.1): every Conflict squash
 *    must be justified by the victim actually intersecting the
 *    committer's write set (signature-level for signature protocols,
 *    exact lines for TCC).
 *  - **Directory quiescence** (Figure 6): when a run completes, every
 *    CST / occupancy queue / arbiter table must be empty (checked by the
 *    runner via System::protocolQuiescent() and reported through
 *    finalize()).
 */

#ifndef SBULK_CHECK_ORACLES_HH
#define SBULK_CHECK_ORACLES_HH

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "proto/commit_protocol.hh"

namespace sbulk
{
namespace check
{

/** One invariant violation. */
struct Violation
{
    /** Which oracle fired ("serializability", "one-winner", ...). */
    std::string oracle;
    std::string detail;
    Tick when = 0;
};

/** All invariant oracles behind one ProtocolObserver. */
class OracleSuite : public ProtocolObserver
{
  public:
    /** Attach the run's clock (for violation timestamps). May be null. */
    void setClock(const EventQueue* eq) { _eq = eq; }

    /// @name ProtocolObserver
    /// @{
    void onCommitRequested(NodeId proc, const CommitId& id,
                           const Chunk& chunk) override;
    void onCommitSerialized(NodeId proc, const CommitId& id) override;
    void onCommitSuccess(NodeId proc, const CommitId& id) override;
    void onCommitFailure(NodeId proc, const CommitId& id) override;
    void onCommitAborted(NodeId proc, const CommitId& id) override;
    void onChunkRead(NodeId proc, const ChunkTag& tag, Addr line) override;
    void onLineCommitted(NodeId dir, Addr line, const CommitId& id) override;
    void onChunkCommitted(NodeId proc, const ChunkTag& tag,
                          const std::vector<Addr>& write_lines,
                          Tick now) override;
    void onChunkSquashed(NodeId proc, const Chunk& victim, SquashReason why,
                         const ChunkTag& committer, const Signature* commit_w,
                         const std::vector<Addr>* commit_lines) override;
    void onGroupFormed(NodeId dir, const CommitId& id,
                       const NodeSet& g_vec) override;
    void onGroupFailed(NodeId dir, const CommitId& id, GroupFailReason why,
                       const CommitId& winner) override;
    /// @}

    /**
     * End-of-run checks.
     * @param completed Every core ran its chunk budget to completion.
     * @param protocol_quiescent System::protocolQuiescent() at the end.
     */
    void finalize(bool completed, bool protocol_quiescent);

    const std::vector<Violation>& violations() const { return _violations; }

    /** Commits validated by the serializability oracle — sanity hook. */
    std::uint64_t commitsChecked() const { return _commitsChecked; }

  private:
    /** Per commit attempt: which outcomes have been observed. */
    struct AttemptState
    {
        bool requested = false;
        bool succeeded = false;
        bool failed = false;
        bool aborted = false;

        bool resolved() const { return succeeded || failed || aborted; }
    };

    /** One committed write to a line. */
    struct WriterRec
    {
        NodeId proc = 0;
        /** Position in the protocol's serialization order (see
         *  onCommitSerialized); completion order when never emitted. */
        std::uint64_t serial = 0;
    };

    void report(const char* oracle, std::string detail);
    Tick now() const;

    std::uint64_t versionOf(Addr line) const;
    bool benignSince(Addr line, std::uint64_t since, NodeId proc,
                     std::uint64_t my_serial) const;
    /** The chunk's serialization position; assigned on first use (grant
     *  hook, first line commit, or retirement — whichever comes first). */
    std::uint64_t serialFor(const ChunkTag& tag);
    std::uint64_t takeSerial(const ChunkTag& tag);

    const EventQueue* _eq = nullptr;
    std::vector<Violation> _violations;

    /// @name Serializability state (version vectors)
    /// @{
    /** Per line: each committed write, in completion order (the line's
     *  version is the log length). */
    std::unordered_map<Addr, std::vector<WriterRec>> _writers;
    /** Per live chunk: line -> version observed at first read. */
    std::unordered_map<ChunkTag, std::unordered_map<Addr, std::uint64_t>>
        _reads;
    /** Serialization points claimed early via onCommitSerialized. */
    std::unordered_map<ChunkTag, std::uint64_t> _serialOf;
    std::uint64_t _serialCounter = 0;
    std::uint64_t _commitsChecked = 0;
    /// @}

    /// @name Commit uniqueness state
    /// @{
    std::unordered_map<CommitId, AttemptState> _attempts;
    /** Tags that consumed a protocol-level commit success. */
    std::unordered_set<ChunkTag> _tagsSucceeded;
    /** Tags the core has retired (exactly-once check). */
    std::unordered_set<ChunkTag> _tagsRetired;
    /// @}

    /// @name Exactly-one-winner state (ScalableBulk groups)
    /// @{
    /** Collision edges: loser -> admitted winner it lost to. */
    std::vector<std::pair<CommitId, CommitId>> _collisions;
    std::unordered_set<CommitId> _groupsFormed;
    /// @}
};

} // namespace check
} // namespace sbulk

#endif // SBULK_CHECK_ORACLES_HH
