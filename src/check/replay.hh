/**
 * @file
 * The model-checking runner: one schedule = one small System driven to
 * completion under a schedule controller with the invariant oracles
 * attached (see CHECKING.md).
 *
 * The runner drives the event queue manually instead of System::run() so
 * that a drained queue with unfinished cores (deadlock) or a run past the
 * tick budget (livelock) is *reported as a violation* instead of
 * panicking — a checker must survive the failures it is hunting.
 *
 * Workloads are conflict-heavy synthetic streams: a handful of hot lines
 * shared by every core, no phasing, so the protocols' collision and
 * squash machinery is exercised constantly even on 2-core runs.
 */

#ifndef SBULK_CHECK_REPLAY_HH
#define SBULK_CHECK_REPLAY_HH

#include <cstdint>

#include "check/oracles.hh"
#include "check/scheduler.hh"
#include "fault/fault_plan.hh"
#include "system/system.hh"

namespace sbulk
{
namespace check
{

/** One schedule exploration's inputs. */
struct CheckConfig
{
    ProtocolKind protocol = ProtocolKind::ScalableBulk;
    /** Cores (= directory modules; one per tile). */
    std::uint32_t procs = 2;
    /** Seed for both the workload and the schedule decisions. */
    std::uint64_t seed = 1;
    /** Largest per-message delivery jitter (0 = tie-breaks only). */
    Tick maxJitter = 8;
    std::uint64_t chunksPerCore = 6;
    std::uint32_t chunkInstrs = 80;
    /** Protocol sabotage knob (tests the oracles, not the protocol). */
    SbBreakMode sbBreak = SbBreakMode::None;
    /** Livelock stop: a schedule running past this tick is a violation. */
    Tick tickLimit = 1'000'000;
    /**
     * Fault-injection plan (see ROBUSTNESS.md). When enabled() the run
     * attaches a FaultTransport, arms the recovery layer (ARQ, watchdogs,
     * capped-exponential retry backoff), and adds the no-stuck-commit
     * liveness oracle on top of the invariant suite. The plan serializes
     * with the trace, so every faulted failure replays from
     * (seed, schedule trace, plan).
     */
    fault::FaultPlan faults{};
};

/** One schedule's outcome. */
struct CheckResult
{
    bool completed = false;
    bool deadlocked = false;
    bool timedOut = false;
    Tick endTick = 0;
    std::uint64_t commitsChecked = 0;
    /** Identifies the explored interleaving (ScheduleTrace::hash()). */
    std::uint64_t traceHash = 0;
    ScheduleTrace trace;
    std::vector<Violation> violations;

    /// @name Fault-sweep degradation counters (all zero without a plan)
    /// @{
    std::uint64_t faultsInjected = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t dupsDropped = 0;
    std::uint64_t watchdogFires = 0;
    std::uint64_t stuckCommits = 0;
    double recoveryLatencyMean = 0;
    /// @}

    bool ok() const { return violations.empty(); }
};

/** Run one randomly-scheduled exploration of cfg.seed. */
CheckResult runSchedule(const CheckConfig& cfg);

/**
 * Re-run cfg deterministically from the first @p prefix decisions of
 * @p trace (FIFO/zero-jitter defaults afterwards). With prefix ==
 * trace.decisions.size() this reproduces the recorded run byte-for-byte.
 */
CheckResult replaySchedule(const CheckConfig& cfg, const ScheduleTrace& trace,
                           std::size_t prefix);

/** A shrunk failure: the shortest violating decision prefix. */
struct ShrinkResult
{
    std::size_t prefix = 0;
    CheckResult result;
};

/**
 * Shrink a failing schedule to a minimal decision prefix that still
 * violates (binary search; the returned result is from an actual replay
 * of the returned prefix).
 */
ShrinkResult shrinkFailure(const CheckConfig& cfg,
                           const ScheduleTrace& trace);

} // namespace check
} // namespace sbulk

#endif // SBULK_CHECK_REPLAY_HH
