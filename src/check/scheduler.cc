#include "check/scheduler.hh"

namespace sbulk
{
namespace check
{

std::uint64_t
ScheduleTrace::hash() const
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ull;
    };
    for (const Decision& d : decisions) {
        mix(d.kind);
        mix(d.value);
    }
    return h;
}

std::uint64_t
ChannelFifoClamp::channelKey(const Message& msg)
{
    return (std::uint64_t(msg.src) << 40) | (std::uint64_t(msg.dst) << 8) |
           std::uint64_t(msg.dstPort);
}

Tick
ChannelFifoClamp::clamp(Tick now, const Message& msg, Tick raw)
{
    // Strictly increasing per channel: if two same-channel messages were
    // allowed to *arrive* on the same tick, the random same-tick tie-break
    // could still process them out of order — something no FIFO link can
    // do, and an ordering the protocols are entitled to rely on.
    auto [it, fresh] = _floor.try_emplace(channelKey(msg), 0);
    Tick jitter = raw;
    if (!fresh && now + jitter <= it->second)
        jitter = it->second + 1 - now;
    it->second = now + jitter;
    return jitter;
}

RandomScheduler::RandomScheduler(std::uint64_t seed, Tick max_jitter,
                                 const EventQueue& eq)
    : _rng(seed), _maxJitter(max_jitter), _eq(eq)
{}

std::size_t
RandomScheduler::chooseNext(std::size_t count)
{
    const std::size_t pick = std::size_t(_rng.below(count));
    _trace.decisions.push_back(
        Decision{Decision::TieBreak, std::uint32_t(pick)});
    return pick;
}

Tick
RandomScheduler::jitter(const Message& msg)
{
    const Tick raw = _maxJitter == 0 ? 0 : Tick(_rng.below(_maxJitter + 1));
    const Tick clamped = _fifo.clamp(_eq.now(), msg, raw);
    _trace.decisions.push_back(
        Decision{Decision::Jitter, std::uint32_t(clamped)});
    return clamped;
}

ReplayScheduler::ReplayScheduler(const ScheduleTrace& trace,
                                 std::size_t prefix, const EventQueue& eq)
    : _recorded(trace), _prefix(std::min(prefix, trace.decisions.size())),
      _eq(eq)
{}

const Decision*
ReplayScheduler::nextRecorded(Decision::Kind kind)
{
    if (_cursor >= _prefix)
        return nullptr;
    const Decision& d = _recorded.decisions[_cursor];
    // A kind mismatch means the shortened prefix diverged from the
    // recorded execution; from that point the defaults take over.
    if (d.kind != kind) {
        _cursor = _prefix;
        return nullptr;
    }
    ++_cursor;
    return &d;
}

std::size_t
ReplayScheduler::chooseNext(std::size_t count)
{
    std::size_t pick = 0;
    if (const Decision* d = nextRecorded(Decision::TieBreak))
        pick = std::min<std::size_t>(d->value, count - 1);
    _executed.decisions.push_back(
        Decision{Decision::TieBreak, std::uint32_t(pick)});
    return pick;
}

Tick
ReplayScheduler::jitter(const Message& msg)
{
    Tick raw = 0;
    if (const Decision* d = nextRecorded(Decision::Jitter))
        raw = d->value;
    const Tick clamped = _fifo.clamp(_eq.now(), msg, raw);
    _executed.decisions.push_back(
        Decision{Decision::Jitter, std::uint32_t(clamped)});
    return clamped;
}

} // namespace check
} // namespace sbulk
