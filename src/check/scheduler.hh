/**
 * @file
 * Schedule controllers for the model checker (see CHECKING.md).
 *
 * A *schedule* is the sequence of discretionary decisions the simulator
 * makes while executing a run: which of several same-tick events runs
 * first (EventQueue tie-breaks) and how much extra delivery delay each
 * network message picks up (jitter). Everything else is deterministic, so
 * a schedule is fully described by the ordered list of those decisions —
 * the ScheduleTrace.
 *
 * Two controllers implement SchedulePolicy:
 *
 *  - RandomScheduler draws every decision from a seeded xoshiro RNG and
 *    records the trace as it goes. Rerunning with the same seed replays
 *    the identical schedule byte-for-byte.
 *  - ReplayScheduler consumes a recorded trace prefix and falls back to
 *    the deterministic defaults (FIFO tie-breaks, zero jitter) once the
 *    prefix is exhausted. Shrinking a failure is a search for the
 *    shortest prefix that still reproduces it.
 *
 * Jitter is clamped so that deliveries on one (src, dst, port) channel
 * never reorder: the baseline networks deliver point-to-point in order
 * and the protocols are entitled to rely on that, so an interleaving
 * that reorders a channel would be an artifact of the checker, not a
 * legal schedule. The clamp assumes a fixed per-message base latency
 * (use DirectNetwork for checking).
 */

#ifndef SBULK_CHECK_SCHEDULER_HH
#define SBULK_CHECK_SCHEDULER_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/message.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"

namespace sbulk
{
namespace check
{

/** One recorded schedule decision. */
struct Decision
{
    enum Kind : std::uint8_t
    {
        TieBreak, ///< value = index chosen among the same-tick batch
        Jitter,   ///< value = extra delivery delay in ticks
    };

    Kind kind = TieBreak;
    std::uint32_t value = 0;
};

/** The complete (or prefix of a) schedule: decisions in draw order. */
struct ScheduleTrace
{
    std::vector<Decision> decisions;

    /** FNV-1a over the decision stream; identifies distinct schedules. */
    std::uint64_t hash() const;
};

/**
 * Per-channel FIFO floor for jitter draws: delivery tick on a channel
 * must be monotone in send order (fixed base latency assumed).
 */
class ChannelFifoClamp
{
  public:
    /** Clamp @p raw so now+result >= the channel's last delivery time. */
    Tick clamp(Tick now, const Message& msg, Tick raw);

  private:
    static std::uint64_t channelKey(const Message& msg);

    /** Per channel: latest (send tick + jitter) granted so far. */
    std::unordered_map<std::uint64_t, Tick> _floor;
};

/**
 * Seeded random schedule: uniform tie-breaks, uniform jitter in
 * [0, maxJitter], every decision recorded.
 */
class RandomScheduler : public SchedulePolicy
{
  public:
    /**
     * @param seed Seed for the decision RNG.
     * @param max_jitter Largest per-message delivery jitter (0 disables
     *        jitter entirely — tie-breaks still randomize).
     * @param eq Clock source for the FIFO clamp.
     */
    RandomScheduler(std::uint64_t seed, Tick max_jitter,
                    const EventQueue& eq);

    std::size_t chooseNext(std::size_t count) override;

    /** Jitter callback for Network::setDeliveryJitter(). */
    Tick jitter(const Message& msg);
    std::function<Tick(const Message&)>
    jitterFn()
    {
        return [this](const Message& m) { return jitter(m); };
    }

    const ScheduleTrace& trace() const { return _trace; }

  private:
    Rng _rng;
    Tick _maxJitter;
    const EventQueue& _eq;
    ChannelFifoClamp _fifo;
    ScheduleTrace _trace;
};

/**
 * Replays the first @p prefix decisions of a recorded trace, then
 * defaults to FIFO tie-breaks and zero (FIFO-clamped) jitter. Records
 * the decisions it actually makes, so a full-prefix replay's trace
 * hash can be compared against the original for byte-for-byte identity.
 */
class ReplayScheduler : public SchedulePolicy
{
  public:
    ReplayScheduler(const ScheduleTrace& trace, std::size_t prefix,
                    const EventQueue& eq);

    std::size_t chooseNext(std::size_t count) override;

    /** Jitter callback for Network::setDeliveryJitter(). */
    Tick jitter(const Message& msg);
    std::function<Tick(const Message&)>
    jitterFn()
    {
        return [this](const Message& m) { return jitter(m); };
    }

    /** The decisions this replay actually executed. */
    const ScheduleTrace& trace() const { return _executed; }

  private:
    /** Next recorded decision if inside the prefix and kinds agree. */
    const Decision* nextRecorded(Decision::Kind kind);

    const ScheduleTrace& _recorded;
    std::size_t _prefix;
    std::size_t _cursor = 0;
    const EventQueue& _eq;
    ChannelFifoClamp _fifo;
    ScheduleTrace _executed;
};

} // namespace check
} // namespace sbulk

#endif // SBULK_CHECK_SCHEDULER_HH
