/**
 * @file
 * Ablation: cost of surviving a lossy interconnect (see ROBUSTNESS.md).
 *
 * Sweeps the transport drop/duplicate rate on the most commit-intensive
 * workload and reports the makespan degradation plus every recovery
 * counter: retransmissions, duplicate suppressions, watchdog fires, retry
 * escalations, and the mean send-to-ack latency of recovered losses. The
 * rate=0 row runs with the fault layer fully detached — its makespan is
 * the budget the acceptance gate compares faulted rows against.
 */

#include "bench/common.hh"

#include <cstdio>

#include "fault/fault_plan.hh"

int
main(int argc, char** argv)
{
    using namespace sbulk;
    using namespace sbulk::bench;
    Options opt = Options::parse(argc, argv);
    banner("Ablation (fault injection / recovery layer)",
           "drop+dup rate sweep on Radix @ 32p, ARQ + watchdogs armed");

    const AppSpec* app = findApp(opt.onlyApp.empty() ? "Radix"
                                                     : opt.onlyApp.c_str());
    if (!app) {
        std::fprintf(stderr, "unknown app '%s'\n", opt.onlyApp.c_str());
        return 2;
    }

    std::printf("%-8s %10s %8s %8s %8s %8s %8s %10s\n", "rate",
                "makespan", "faults", "retx", "dupdrop", "wdog", "escal",
                "recLatMean");
    for (double rate : {0.0, 0.001, 0.005, 0.01, 0.02, 0.05}) {
        RunConfig cfg;
        cfg.app = app;
        cfg.procs = 32;
        cfg.totalChunks = opt.chunks;
        if (rate > 0) {
            cfg.faults.seed = 7;
            cfg.faults.dropRate = rate;
            cfg.faults.dupRate = rate;
        }
        const RunResult r = runExperiment(cfg);
        std::printf("%-8.3f %10llu %8llu %8llu %8llu %8llu %8llu %10.1f\n",
                    rate, (unsigned long long)r.makespan,
                    (unsigned long long)r.faultsInjected,
                    (unsigned long long)r.retransmissions,
                    (unsigned long long)r.dupsDropped,
                    (unsigned long long)r.watchdogFires,
                    (unsigned long long)r.retryEscalations,
                    r.recoveryLatencyMean);
    }
    return 0;
}
