/**
 * @file
 * Ablation: interconnect link latency (Table 2 fixes 7 cycles).
 *
 * Group formation serializes one link traversal per member, so
 * ScalableBulk's commit latency scales with link latency times group
 * size; the sweep quantifies that sensitivity and compares against an
 * ideal (contention-free, fixed-latency) fabric.
 */

#include "bench/common.hh"

int
main(int argc, char** argv)
{
    using namespace sbulk;
    using namespace sbulk::bench;
    Options opt = Options::parse(argc, argv);
    banner("Ablation (interconnect)",
           "link-latency sensitivity of ScalableBulk commits");

    const AppSpec* app = findApp(opt.onlyApp.empty() ? "Barnes"
                                                     : opt.onlyApp.c_str());
    SBULK_ASSERT(app != nullptr);

    std::printf("%-18s %10s %10s %9s\n", "fabric", "makespan", "commitLat",
                "commit%");
    for (Tick link : {3u, 7u, 15u, 30u}) {
        RunConfig cfg;
        cfg.app = app;
        cfg.procs = 64;
        cfg.totalChunks = opt.chunks;
        SystemConfig dummy; // defaults carry the torus config
        (void)dummy;
        // runExperiment drives SystemConfig internally; thread the torus
        // latency through a local experiment instead.
        SystemConfig sys_cfg;
        sys_cfg.numProcs = 64;
        sys_cfg.torus.linkLatency = link;
        sys_cfg.core.chunksToRun =
            std::max<std::uint64_t>(1, opt.chunks / 64);

        const SyntheticParams params = streamParams(*app, 64);
        std::vector<std::unique_ptr<ThreadStream>> streams;
        for (NodeId n = 0; n < 64; ++n)
            streams.push_back(std::make_unique<SyntheticStream>(
                params, n, 64, sys_cfg.mem.l2.lineBytes,
                sys_cfg.mem.pageBytes));
        System sys(sys_cfg, std::move(streams));
        const Tick end = sys.run(4'000'000'000ull);
        const auto b = sys.breakdown();
        char label[32];
        std::snprintf(label, sizeof label, "torus %2u-cyc links",
                      unsigned(link));
        std::printf("%-18s %10llu %10.1f %8.2f%%\n", label,
                    (unsigned long long)end,
                    sys.metrics().commitLatency.mean(),
                    100.0 * b.commit / b.total());
    }

    // Ideal fabric for reference.
    {
        SystemConfig sys_cfg;
        sys_cfg.numProcs = 64;
        sys_cfg.directNetwork = true;
        sys_cfg.core.chunksToRun =
            std::max<std::uint64_t>(1, opt.chunks / 64);
        const SyntheticParams params = streamParams(*app, 64);
        std::vector<std::unique_ptr<ThreadStream>> streams;
        for (NodeId n = 0; n < 64; ++n)
            streams.push_back(std::make_unique<SyntheticStream>(
                params, n, 64, sys_cfg.mem.l2.lineBytes,
                sys_cfg.mem.pageBytes));
        System sys(sys_cfg, std::move(streams));
        const Tick end = sys.run(4'000'000'000ull);
        const auto b = sys.breakdown();
        std::printf("%-18s %10llu %10.1f %8.2f%%\n", "ideal 10-cyc p2p",
                    (unsigned long long)end,
                    sys.metrics().commitLatency.mean(),
                    100.0 * b.commit / b.total());
    }
    return 0;
}
