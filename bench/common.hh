/**
 * @file
 * Shared plumbing for the figure-regeneration benches: CLI parsing, run
 * caching, and table formatting. Each bench binary reproduces one figure
 * of the paper's evaluation (Section 6); see DESIGN.md for the index.
 */

#ifndef SBULK_BENCH_COMMON_HH
#define SBULK_BENCH_COMMON_HH

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "system/experiment.hh"

namespace sbulk
{
namespace bench
{

/** Command-line options shared by every figure bench. */
struct Options
{
    /** Total chunks of work per run (divided over the cores). */
    std::uint64_t chunks = 1280;
    /** Restrict to one application (empty = the figure's full set). */
    std::string onlyApp;
    /** Quick mode: fewer chunks, for smoke runs. */
    bool quick = false;

    static Options
    parse(int argc, char** argv)
    {
        Options opt;
        for (int i = 1; i < argc; ++i) {
            if (!std::strcmp(argv[i], "--quick")) {
                opt.quick = true;
                opt.chunks = 320;
            } else if (!std::strcmp(argv[i], "--chunks") && i + 1 < argc) {
                opt.chunks = std::strtoull(argv[++i], nullptr, 10);
            } else if (!std::strcmp(argv[i], "--app") && i + 1 < argc) {
                opt.onlyApp = argv[++i];
            } else {
                std::fprintf(stderr,
                             "usage: %s [--quick] [--chunks N] [--app NAME]\n",
                             argv[0]);
                std::exit(2);
            }
        }
        return opt;
    }

    /** The figure's application list, filtered by --app. */
    std::vector<const AppSpec*>
    select(const std::vector<AppSpec>& apps) const
    {
        std::vector<const AppSpec*> out;
        for (const auto& app : apps)
            if (onlyApp.empty() || onlyApp == app.name)
                out.push_back(&app);
        return out;
    }
};

/** Run one experiment with the bench's standard knobs. */
inline RunResult
run(const AppSpec& app, std::uint32_t procs, ProtocolKind proto,
    const Options& opt)
{
    RunConfig cfg;
    cfg.app = &app;
    cfg.procs = procs;
    cfg.protocol = proto;
    cfg.totalChunks = opt.chunks;
    RunResult r = runExperiment(cfg);
    std::fflush(stdout);
    return r;
}

/** Header banner naming the figure being regenerated. */
inline void
banner(const char* figure, const char* what)
{
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", figure, what);
    std::printf("(shape reproduction; absolute numbers differ from the paper's\n"
                " testbed — see EXPERIMENTS.md)\n");
    std::printf("==============================================================\n");
}

} // namespace bench
} // namespace sbulk

#endif // SBULK_BENCH_COMMON_HH
