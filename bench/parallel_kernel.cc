/**
 * @file
 * Wall-clock harness for the parallel-in-run event kernel: one 256-tile
 * simulation timed serial (--shards 1) and sharded (--shards 2/4/8, each
 * under both the contiguous and the profile-guided balanced map), the
 * figure-shape check (ScalableBulk < SEQ < TCC < BulkSC commit overhead)
 * at the large machine size, and a 1024-tile scenario completion run.
 * Feeds scripts/bench.py and the committed BENCH_parallel_kernel.json.
 *
 * Both timings simulate the *same* machine: the serial baseline runs with
 * interleaved page homing (the sharded kernel's policy), so the wall-clock
 * ratio isolates the kernel, not a workload-placement difference. Every
 * timed configuration (serial included) runs in a fresh forked child so
 * allocator and cache state left by earlier configurations cannot skew
 * later ones — without it the last configs in the sweep measure heap
 * fragmentation, not the kernel. Two speedup figures are reported:
 *   - measured: serial wall / sharded wall on THIS host (meaningless on a
 *     single-CPU host, where S worker threads time-slice one core);
 *   - critical-path: serial wall / max per-shard busy seconds — the bound
 *     a host with >= S idle cores converges to, computable on any host.
 */

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "sim/parallel.hh"
#include "system/experiment.hh"
#include "workload/apps.hh"

namespace
{

using namespace sbulk;

struct Options
{
    std::uint32_t procs = 256;
    std::uint64_t chunks = 2560;
    std::vector<std::uint32_t> shardCounts = {2, 4, 8};
    bool quick = false;
    bool skipScale = false;
    std::string jsonPath;
};

Options
parseArgs(int argc, char** argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--quick")) {
            // CI smoke: same 256-tile machine, less work, no side studies.
            opt.quick = true;
            opt.chunks = 768;
            opt.skipScale = true;
            opt.shardCounts = {8};
        } else if (!std::strcmp(argv[i], "--procs") && i + 1 < argc) {
            opt.procs = std::uint32_t(std::atoi(argv[++i]));
        } else if (!std::strcmp(argv[i], "--chunks") && i + 1 < argc) {
            opt.chunks = std::strtoull(argv[++i], nullptr, 10);
        } else if (!std::strcmp(argv[i], "--skip-1024")) {
            opt.skipScale = true;
        } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
            opt.jsonPath = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--quick] [--procs N] [--chunks N] "
                         "[--skip-1024] [--json FILE]\n",
                         argv[0]);
            std::exit(2);
        }
    }
    return opt;
}

RunResult
timedRun(const Options& opt, std::uint32_t shards, ProtocolKind proto,
         const char* app = "Radix", // scatter writes: the stress case
         const char* shard_map = "contiguous")
{
    RunConfig cfg;
    cfg.app = findApp(app);
    cfg.procs = opt.procs;
    cfg.protocol = proto;
    cfg.totalChunks = opt.chunks;
    cfg.shards = shards;
    cfg.shardMap = shards > 1 ? shard_map : "";
    cfg.interleavedPages = true; // match the sharded kernel's homing
    return runExperiment(cfg);
}

double
maxShardBusy(const RunResult& r)
{
    double m = 0;
    for (const auto& s : r.shardStats)
        m = std::max(m, s.busySec);
    return m;
}

/** Mean fraction of the window loop a shard spent inside the barrier. */
double
barrierStallShare(const RunResult& r)
{
    if (r.shardStats.empty() || r.shardWallSec <= 0)
        return 0;
    double stall = 0;
    for (const auto& s : r.shardStats)
        stall += s.stallSec;
    return stall / (double(r.shardStats.size()) * r.shardWallSec);
}

/** Fraction of windows that executed no events (horizon too tight). */
double
emptyWindowShare(const RunResult& r)
{
    std::uint64_t windows = 0, empty = 0;
    for (const auto& s : r.shardStats) {
        windows += s.windows;
        empty += s.emptyWindows;
    }
    return windows ? double(empty) / double(windows) : 0;
}

/** The subset of RunResult the timing section needs — trivially copyable
 *  so a forked child can ship it through a pipe. */
struct TimedMetrics
{
    double wall = 0;
    double maxBusy = 0;
    double stallShare = 0;
    double emptyShare = 0;
    std::uint64_t commits = 0;
};

TimedMetrics
metricsOf(const RunResult& r)
{
    TimedMetrics m;
    m.wall = r.wallSec;
    m.maxBusy = maxShardBusy(r);
    m.stallShare = barrierStallShare(r);
    m.emptyShare = emptyWindowShare(r);
    m.commits = r.commits;
    return m;
}

/** Run one timed configuration in a fresh child process and ship its
 *  metrics back through a pipe. Exits the harness on any child failure —
 *  a silently substituted number would poison the committed baseline. */
TimedMetrics
timedRunIsolated(const Options& opt, std::uint32_t shards,
                 const char* shard_map)
{
    int fds[2];
    if (pipe(fds) != 0) {
        std::perror("pipe");
        std::exit(1);
    }
    const pid_t pid = fork();
    if (pid < 0) {
        std::perror("fork");
        std::exit(1);
    }
    if (pid == 0) {
        close(fds[0]);
        setShardThreadFactor(shards);
        const TimedMetrics m = metricsOf(
            timedRun(opt, shards, ProtocolKind::ScalableBulk, "Radix",
                     shard_map));
        const ssize_t put = write(fds[1], &m, sizeof m);
        _exit(put == ssize_t(sizeof m) ? 0 : 1);
    }
    close(fds[1]);
    TimedMetrics m;
    const ssize_t got = read(fds[0], &m, sizeof m);
    close(fds[0]);
    int status = 0;
    waitpid(pid, &status, 0);
    if (got != ssize_t(sizeof m) || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
        std::fprintf(stderr,
                     "FAIL: timed child (shards=%u, map=%s) died without "
                     "reporting\n",
                     shards, shard_map);
        std::exit(1);
    }
    return m;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace sbulk;
    Options opt = parseArgs(argc, argv);

    std::printf("parallel-in-run kernel harness: %u tiles, %llu chunks, "
                "host has %u CPUs\n",
                opt.procs, (unsigned long long)opt.chunks,
                std::thread::hardware_concurrency());

    // -- timing: serial vs sharded on the identical machine ------------
    const TimedMetrics serial = timedRunIsolated(opt, 1, "");
    std::printf("%-10s %-12s %10s %12s %12s %12s %7s %7s\n", "shards",
                "map", "wallSec", "measured", "critPath", "commits/s",
                "stall", "emptyW");
    std::printf("%-10u %-12s %10.2f %12s %12s %12.0f %7s %7s\n", 1u, "-",
                serial.wall, "-", "-",
                double(serial.commits) / serial.wall, "-", "-");

    struct Sample
    {
        std::uint32_t shards;
        const char* map;
        double wall;
        double critPath;
        double measured;
        double commitRate;
        double stallShare;
        double emptyShare;
    };
    std::vector<Sample> samples;
    // Both maps run at every shard count: "balanced" is the kernel's
    // headline configuration, "contiguous" the comparison point — and
    // identical commit counts across serial and both maps re-checks the
    // determinism contract at bench scale.
    for (std::uint32_t s : opt.shardCounts) {
        for (const char* map : {"contiguous", "balanced"}) {
            const TimedMetrics r = timedRunIsolated(opt, s, map);
            if (r.commits != serial.commits) {
                std::fprintf(stderr,
                             "FAIL: sharded run (%s map) committed %llu "
                             "chunks, serial %llu\n",
                             map, (unsigned long long)r.commits,
                             (unsigned long long)serial.commits);
                return 1;
            }
            Sample smp;
            smp.shards = s;
            smp.map = map;
            smp.wall = r.wall;
            smp.critPath = r.maxBusy > 0 ? serial.wall / r.maxBusy : 0;
            smp.measured = r.wall > 0 ? serial.wall / r.wall : 0;
            smp.commitRate = r.wall > 0 ? double(r.commits) / r.wall : 0;
            smp.stallShare = r.stallShare;
            smp.emptyShare = r.emptyShare;
            samples.push_back(smp);
            std::printf("%-10u %-12s %10.2f %11.2fx %11.2fx %12.0f "
                        "%6.1f%% %6.1f%%\n",
                        s, map, smp.wall, smp.measured, smp.critPath,
                        smp.commitRate, 100.0 * smp.stallShare,
                        100.0 * smp.emptyShare);
            std::fflush(stdout);
        }
    }

    // -- figure shape at the large size (full mode only) ---------------
    // The claim re-validated here is the paper's commit-overhead ordering
    // ScalableBulk < SEQ < TCC < BulkSC (mean commit latency, Figure 13).
    // Measured on LU: EXPERIMENTS.md documents that this repo's SEQ model
    // overshoots on scatter-heavy codes (Radix), where SEQ lands worst —
    // the ordering claim is about the structured codes the paper averages.
    struct ShapePoint
    {
        const char* name;
        double commitFrac;
        double commitLatency;
    };
    std::vector<ShapePoint> shape;
    bool shapeHolds = true;
    bool strictOrder = false;
    if (!opt.quick) {
        constexpr ProtocolKind kOrder[] = {
            ProtocolKind::ScalableBulk, ProtocolKind::SEQ,
            ProtocolKind::TCC, ProtocolKind::BulkSC};
        setShardThreadFactor(8);
        std::printf("\ncommit overhead at %u tiles, LU (--shards 8):\n",
                    opt.procs);
        for (ProtocolKind proto : kOrder) {
            const RunResult r = timedRun(opt, 8, proto, "LU");
            const double frac =
                100.0 * r.breakdown.commit / r.breakdown.total();
            shape.push_back(ShapePoint{protocolName(proto), frac,
                                       r.commitLatencyMean});
            std::printf("  %-13s commit %6.2f%%  latency %8.1f cycles\n",
                        protocolName(proto), frac, r.commitLatencyMean);
            std::fflush(stdout);
        }
        setShardThreadFactor(1);
        // Two grades, matching EXPERIMENTS.md's verdict convention: the
        // repo's reproducible claim is the endpoints (ScalableBulk lowest,
        // BulkSC highest); the strict paper order additionally wants
        // SEQ < TCC, which this testbed's SEQ model has always flipped
        // (documented deviation: SEQ overshoots on occupation queueing).
        const double sb = shape[0].commitLatency;
        const double seq = shape[1].commitLatency;
        const double tcc = shape[2].commitLatency;
        const double bulksc = shape[3].commitLatency;
        shapeHolds = sb < seq && sb < tcc && seq < bulksc && tcc < bulksc;
        const bool strict = strictOrder =
            sb < seq && seq < tcc && tcc < bulksc;
        std::printf("figure shape: ScalableBulk lowest / BulkSC highest: "
                    "%s; strict paper order (SB < SEQ < TCC < BulkSC): "
                    "%s\n",
                    shapeHolds ? "holds" : "VIOLATED",
                    strict ? "holds" : "SEQ/TCC swapped (known deviation)");
    }

    // -- 1024-tile scenario completion ----------------------------------
    double scaleWall = 0;
    std::uint64_t scaleCommits = 0;
    if (!opt.skipScale) {
        RunConfig cfg;
        cfg.procs = 1024;
        cfg.protocol = ProtocolKind::ScalableBulk;
        cfg.scenario = "kv-zipf";
        cfg.scenarioParams.tenants = 16;
        cfg.scenarioParams.requests = 8192;
        cfg.shards = 8;
        setShardThreadFactor(8);
        const RunResult r = runExperiment(cfg);
        setShardThreadFactor(1);
        scaleWall = r.wallSec;
        scaleCommits = r.commits;
        std::printf("\n1024-tile kv-zipf scenario: %llu commits in %.2fs "
                    "wall (%llu simulated cycles)\n",
                    (unsigned long long)r.commits, r.wallSec,
                    (unsigned long long)r.makespan);
    }

    // -- JSON ------------------------------------------------------------
    if (!opt.jsonPath.empty()) {
        FILE* f = std::fopen(opt.jsonPath.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", opt.jsonPath.c_str());
            return 1;
        }
        std::fprintf(f, "{\n");
        std::fprintf(f, "  \"host_cpus\": %u,\n",
                     std::thread::hardware_concurrency());
        std::fprintf(f, "  \"procs\": %u,\n", opt.procs);
        std::fprintf(f, "  \"chunks\": %llu,\n",
                     (unsigned long long)opt.chunks);
        std::fprintf(f, "  \"serial_seconds\": %.3f,\n", serial.wall);
        std::fprintf(f, "  \"serial_commits_per_sec\": %.0f,\n",
                     double(serial.commits) / serial.wall);
        for (const auto& s : samples) {
            // Balanced-map samples carry the headline keys (the kernel's
            // configuration of record); contiguous keeps a _contiguous
            // suffix for the partitioning comparison.
            const bool headline = !std::strcmp(s.map, "balanced");
            const char* sfx = headline ? "" : "_contiguous";
            std::fprintf(f, "  \"sharded%u_seconds%s\": %.3f,\n", s.shards,
                         sfx, s.wall);
            std::fprintf(f, "  \"sharded%u_commits_per_sec%s\": %.0f,\n",
                         s.shards, sfx, s.commitRate);
            std::fprintf(f, "  \"speedup_measured_shards%u%s\": %.2f,\n",
                         s.shards, sfx, s.measured);
            std::fprintf(f,
                         "  \"speedup_critical_path_shards%u%s\": %.2f,\n",
                         s.shards, sfx, s.critPath);
            std::fprintf(f,
                         "  \"sharded%u_barrier_stall_share%s\": %.4f,\n",
                         s.shards, sfx, s.stallShare);
            std::fprintf(f,
                         "  \"sharded%u_empty_window_share%s\": %.4f,\n",
                         s.shards, sfx, s.emptyShare);
        }
        if (!shape.empty()) {
            std::fprintf(f, "  \"figure_shape_holds\": %s,\n",
                         shapeHolds ? "true" : "false");
            std::fprintf(f, "  \"figure_shape_paper_strict\": %s,\n",
                         strictOrder ? "true" : "false");
            for (const auto& p : shape) {
                std::fprintf(f, "  \"commit_overhead_pct_%s\": %.2f,\n",
                             p.name, p.commitFrac);
                std::fprintf(f, "  \"commit_latency_%s\": %.1f,\n",
                             p.name, p.commitLatency);
            }
        }
        if (scaleWall > 0) {
            std::fprintf(f, "  \"scale1024_seconds\": %.3f,\n", scaleWall);
            std::fprintf(f, "  \"scale1024_commits\": %llu,\n",
                         (unsigned long long)scaleCommits);
        }
        std::fprintf(f, "  \"benchmark\": \"bench/parallel_kernel\"\n");
        std::fprintf(f, "}\n");
        std::fclose(f);
    }
    return 0;
}
