/**
 * @file
 * Wall-clock harness for the parallel-in-run event kernel: one 256-tile
 * simulation timed serial (--shards 1) and sharded (--shards 2/4/8), the
 * figure-shape check (ScalableBulk < SEQ < TCC < BulkSC commit overhead)
 * at the large machine size, and a 1024-tile scenario completion run.
 * Feeds scripts/bench.py and the committed BENCH_parallel_kernel.json.
 *
 * Both timings simulate the *same* machine: the serial baseline runs with
 * interleaved page homing (the sharded kernel's policy), so the wall-clock
 * ratio isolates the kernel, not a workload-placement difference. Two
 * speedup figures are reported:
 *   - measured: serial wall / sharded wall on THIS host (meaningless on a
 *     single-CPU host, where S worker threads time-slice one core);
 *   - critical-path: serial wall / max per-shard busy seconds — the bound
 *     a host with >= S idle cores converges to, computable on any host.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "sim/parallel.hh"
#include "system/experiment.hh"
#include "workload/apps.hh"

namespace
{

using namespace sbulk;

struct Options
{
    std::uint32_t procs = 256;
    std::uint64_t chunks = 2560;
    std::vector<std::uint32_t> shardCounts = {2, 4, 8};
    bool quick = false;
    bool skipScale = false;
    std::string jsonPath;
};

Options
parseArgs(int argc, char** argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--quick")) {
            // CI smoke: same 256-tile machine, less work, no side studies.
            opt.quick = true;
            opt.chunks = 768;
            opt.skipScale = true;
            opt.shardCounts = {8};
        } else if (!std::strcmp(argv[i], "--procs") && i + 1 < argc) {
            opt.procs = std::uint32_t(std::atoi(argv[++i]));
        } else if (!std::strcmp(argv[i], "--chunks") && i + 1 < argc) {
            opt.chunks = std::strtoull(argv[++i], nullptr, 10);
        } else if (!std::strcmp(argv[i], "--skip-1024")) {
            opt.skipScale = true;
        } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
            opt.jsonPath = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--quick] [--procs N] [--chunks N] "
                         "[--skip-1024] [--json FILE]\n",
                         argv[0]);
            std::exit(2);
        }
    }
    return opt;
}

RunResult
timedRun(const Options& opt, std::uint32_t shards, ProtocolKind proto,
         const char* app = "Radix") // scatter writes: the stress case
{
    RunConfig cfg;
    cfg.app = findApp(app);
    cfg.procs = opt.procs;
    cfg.protocol = proto;
    cfg.totalChunks = opt.chunks;
    cfg.shards = shards;
    cfg.interleavedPages = true; // match the sharded kernel's homing
    return runExperiment(cfg);
}

double
maxShardBusy(const RunResult& r)
{
    double m = 0;
    for (const auto& s : r.shardStats)
        m = std::max(m, s.busySec);
    return m;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace sbulk;
    Options opt = parseArgs(argc, argv);

    std::printf("parallel-in-run kernel harness: %u tiles, %llu chunks, "
                "host has %u CPUs\n",
                opt.procs, (unsigned long long)opt.chunks,
                std::thread::hardware_concurrency());

    // -- timing: serial vs sharded on the identical machine ------------
    const RunResult serial = timedRun(opt, 1, ProtocolKind::ScalableBulk);
    std::printf("%-10s %10s %12s %12s %12s\n", "shards", "wallSec",
                "measured", "critPath", "commits/s");
    std::printf("%-10u %10.2f %12s %12s %12.0f\n", 1u, serial.wallSec, "-",
                "-", double(serial.commits) / serial.wallSec);

    struct Sample
    {
        std::uint32_t shards;
        double wall;
        double critPath;
        double measured;
        double commitRate;
    };
    std::vector<Sample> samples;
    for (std::uint32_t s : opt.shardCounts) {
        setShardThreadFactor(s);
        const RunResult r = timedRun(opt, s, ProtocolKind::ScalableBulk);
        if (r.commits != serial.commits) {
            std::fprintf(stderr,
                         "FAIL: sharded run committed %llu chunks, serial "
                         "%llu\n",
                         (unsigned long long)r.commits,
                         (unsigned long long)serial.commits);
            return 1;
        }
        Sample smp;
        smp.shards = s;
        smp.wall = r.wallSec;
        const double busy = maxShardBusy(r);
        smp.critPath = busy > 0 ? serial.wallSec / busy : 0;
        smp.measured = r.wallSec > 0 ? serial.wallSec / r.wallSec : 0;
        smp.commitRate = r.wallSec > 0 ? double(r.commits) / r.wallSec : 0;
        samples.push_back(smp);
        std::printf("%-10u %10.2f %11.2fx %11.2fx %12.0f\n", s, smp.wall,
                    smp.measured, smp.critPath, smp.commitRate);
        std::fflush(stdout);
    }
    setShardThreadFactor(1);

    // -- figure shape at the large size (full mode only) ---------------
    // The claim re-validated here is the paper's commit-overhead ordering
    // ScalableBulk < SEQ < TCC < BulkSC (mean commit latency, Figure 13).
    // Measured on LU: EXPERIMENTS.md documents that this repo's SEQ model
    // overshoots on scatter-heavy codes (Radix), where SEQ lands worst —
    // the ordering claim is about the structured codes the paper averages.
    struct ShapePoint
    {
        const char* name;
        double commitFrac;
        double commitLatency;
    };
    std::vector<ShapePoint> shape;
    bool shapeHolds = true;
    bool strictOrder = false;
    if (!opt.quick) {
        constexpr ProtocolKind kOrder[] = {
            ProtocolKind::ScalableBulk, ProtocolKind::SEQ,
            ProtocolKind::TCC, ProtocolKind::BulkSC};
        setShardThreadFactor(8);
        std::printf("\ncommit overhead at %u tiles, LU (--shards 8):\n",
                    opt.procs);
        for (ProtocolKind proto : kOrder) {
            const RunResult r = timedRun(opt, 8, proto, "LU");
            const double frac =
                100.0 * r.breakdown.commit / r.breakdown.total();
            shape.push_back(ShapePoint{protocolName(proto), frac,
                                       r.commitLatencyMean});
            std::printf("  %-13s commit %6.2f%%  latency %8.1f cycles\n",
                        protocolName(proto), frac, r.commitLatencyMean);
            std::fflush(stdout);
        }
        setShardThreadFactor(1);
        // Two grades, matching EXPERIMENTS.md's verdict convention: the
        // repo's reproducible claim is the endpoints (ScalableBulk lowest,
        // BulkSC highest); the strict paper order additionally wants
        // SEQ < TCC, which this testbed's SEQ model has always flipped
        // (documented deviation: SEQ overshoots on occupation queueing).
        const double sb = shape[0].commitLatency;
        const double seq = shape[1].commitLatency;
        const double tcc = shape[2].commitLatency;
        const double bulksc = shape[3].commitLatency;
        shapeHolds = sb < seq && sb < tcc && seq < bulksc && tcc < bulksc;
        const bool strict = strictOrder =
            sb < seq && seq < tcc && tcc < bulksc;
        std::printf("figure shape: ScalableBulk lowest / BulkSC highest: "
                    "%s; strict paper order (SB < SEQ < TCC < BulkSC): "
                    "%s\n",
                    shapeHolds ? "holds" : "VIOLATED",
                    strict ? "holds" : "SEQ/TCC swapped (known deviation)");
    }

    // -- 1024-tile scenario completion ----------------------------------
    double scaleWall = 0;
    std::uint64_t scaleCommits = 0;
    if (!opt.skipScale) {
        RunConfig cfg;
        cfg.procs = 1024;
        cfg.protocol = ProtocolKind::ScalableBulk;
        cfg.scenario = "kv-zipf";
        cfg.scenarioParams.tenants = 16;
        cfg.scenarioParams.requests = 8192;
        cfg.shards = 8;
        setShardThreadFactor(8);
        const RunResult r = runExperiment(cfg);
        setShardThreadFactor(1);
        scaleWall = r.wallSec;
        scaleCommits = r.commits;
        std::printf("\n1024-tile kv-zipf scenario: %llu commits in %.2fs "
                    "wall (%llu simulated cycles)\n",
                    (unsigned long long)r.commits, r.wallSec,
                    (unsigned long long)r.makespan);
    }

    // -- JSON ------------------------------------------------------------
    if (!opt.jsonPath.empty()) {
        FILE* f = std::fopen(opt.jsonPath.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", opt.jsonPath.c_str());
            return 1;
        }
        std::fprintf(f, "{\n");
        std::fprintf(f, "  \"host_cpus\": %u,\n",
                     std::thread::hardware_concurrency());
        std::fprintf(f, "  \"procs\": %u,\n", opt.procs);
        std::fprintf(f, "  \"chunks\": %llu,\n",
                     (unsigned long long)opt.chunks);
        std::fprintf(f, "  \"serial_seconds\": %.3f,\n", serial.wallSec);
        std::fprintf(f, "  \"serial_commits_per_sec\": %.0f,\n",
                     double(serial.commits) / serial.wallSec);
        for (const auto& s : samples) {
            std::fprintf(f, "  \"sharded%u_seconds\": %.3f,\n", s.shards,
                         s.wall);
            std::fprintf(f, "  \"sharded%u_commits_per_sec\": %.0f,\n",
                         s.shards, s.commitRate);
            std::fprintf(f, "  \"speedup_measured_shards%u\": %.2f,\n",
                         s.shards, s.measured);
            std::fprintf(f, "  \"speedup_critical_path_shards%u\": %.2f,\n",
                         s.shards, s.critPath);
        }
        if (!shape.empty()) {
            std::fprintf(f, "  \"figure_shape_holds\": %s,\n",
                         shapeHolds ? "true" : "false");
            std::fprintf(f, "  \"figure_shape_paper_strict\": %s,\n",
                         strictOrder ? "true" : "false");
            for (const auto& p : shape) {
                std::fprintf(f, "  \"commit_overhead_pct_%s\": %.2f,\n",
                             p.name, p.commitFrac);
                std::fprintf(f, "  \"commit_latency_%s\": %.1f,\n",
                             p.name, p.commitLatency);
            }
        }
        if (scaleWall > 0) {
            std::fprintf(f, "  \"scale1024_seconds\": %.3f,\n", scaleWall);
            std::fprintf(f, "  \"scale1024_commits\": %llu,\n",
                         (unsigned long long)scaleCommits);
        }
        std::fprintf(f, "  \"benchmark\": \"bench/parallel_kernel\"\n");
        std::fprintf(f, "}\n");
        std::fclose(f);
    }
    return 0;
}
