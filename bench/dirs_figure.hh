/**
 * @file
 * Shared implementation of Figures 9/10 (average directories per chunk
 * commit, split into Write Group and Read Group) and Figures 11/12 (the
 * distribution of directories per commit at 64 processors).
 */

#ifndef SBULK_BENCH_DIRS_FIGURE_HH
#define SBULK_BENCH_DIRS_FIGURE_HH

#include "bench/common.hh"

namespace sbulk
{
namespace bench
{

/** Figures 9/10: averages at 32 and 64 processors, ScalableBulk. */
inline void
runDirsAverageFigure(const char* figure, const std::vector<AppSpec>& suite,
                     const Options& opt)
{
    banner(figure, "avg directories per chunk commit (Write/Read group)");
    std::printf("%-14s %5s %10s %11s %10s\n", "app", "procs", "total",
                "writeGroup", "readGroup");
    double sum_total[2] = {0, 0}, sum_write[2] = {0, 0};
    int n[2] = {0, 0};
    for (const AppSpec* app : opt.select(suite)) {
        for (int si = 0; si < 2; ++si) {
            const std::uint32_t procs = si == 0 ? 32 : 64;
            const RunResult r =
                run(*app, procs, ProtocolKind::ScalableBulk, opt);
            const double read_group =
                r.dirsPerCommitMean - r.writeDirsPerCommitMean;
            std::printf("%-14s %5u %10.2f %11.2f %10.2f\n",
                        app->name.c_str(), procs, r.dirsPerCommitMean,
                        r.writeDirsPerCommitMean, read_group);
            sum_total[si] += r.dirsPerCommitMean;
            sum_write[si] += r.writeDirsPerCommitMean;
            ++n[si];
        }
    }
    for (int si = 0; si < 2; ++si) {
        if (n[si] == 0)
            continue;
        std::printf("%-14s %5u %10.2f %11.2f %10.2f\n", "AVERAGE",
                    si == 0 ? 32 : 64, sum_total[si] / n[si],
                    sum_write[si] / n[si],
                    (sum_total[si] - sum_write[si]) / n[si]);
    }
}

/** Figures 11/12: per-app distribution at 64 processors. */
inline void
runDirsDistributionFigure(const char* figure,
                          const std::vector<AppSpec>& suite,
                          const Options& opt)
{
    banner(figure,
           "distribution of directories per chunk commit, 64 processors");
    std::printf("%-14s", "app");
    for (int d = 0; d <= 14; ++d)
        std::printf(" %5d", d);
    std::printf(" %5s\n", "more");

    for (const AppSpec* app : opt.select(suite)) {
        const RunResult r = run(*app, 64, ProtocolKind::ScalableBulk, opt);
        const auto& hist = r.dirsPerCommit;
        const double total = double(hist.count());
        std::printf("%-14s", app->name.c_str());
        double more = 0;
        for (std::size_t b = 0; b < hist.buckets().size(); ++b) {
            if (b <= 14)
                continue;
            more += double(hist.buckets()[b]);
        }
        for (int d = 0; d <= 14; ++d) {
            const double pct =
                total > 0 ? 100.0 * double(hist.buckets()[std::size_t(d)]) /
                                total
                          : 0.0;
            std::printf(" %4.1f%%", pct);
        }
        std::printf(" %4.1f%%\n", total > 0 ? 100.0 * more / total : 0.0);
    }
}

} // namespace bench
} // namespace sbulk

#endif // SBULK_BENCH_DIRS_FIGURE_HH
