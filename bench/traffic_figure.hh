/**
 * @file
 * Shared implementation of Figures 18/19: number and class mix of network
 * messages per protocol, normalized to TCC (which the paper shows
 * generating the most traffic, dominated by small commit messages — the
 * probe/skip broadcast).
 *
 * Classes follow the paper: MemRd / RemoteShRd / RemoteDirtyRd (reads by
 * data source; each counts its request + reply pair) and LargeCMessage /
 * SmallCMessage (commit protocol).
 */

#ifndef SBULK_BENCH_TRAFFIC_FIGURE_HH
#define SBULK_BENCH_TRAFFIC_FIGURE_HH

#include "bench/common.hh"

namespace sbulk
{
namespace bench
{

struct TrafficRow
{
    double memRd = 0, remoteSh = 0, remoteDirty = 0, largeC = 0,
           smallC = 0;
    double total() const
    {
        return memRd + remoteSh + remoteDirty + largeC + smallC;
    }
};

inline TrafficRow
classify(const TrafficStats& t)
{
    TrafficRow row;
    // A read transaction = request + classified reply (+ a forward hop
    // for dirty reads); fold the control messages into the read classes
    // as the paper does.
    row.memRd = 2.0 * double(t.messages(MsgClass::MemRd));
    row.remoteSh = 2.0 * double(t.messages(MsgClass::RemoteShRd));
    row.remoteDirty = 3.0 * double(t.messages(MsgClass::RemoteDirtyRd));
    row.largeC = double(t.messages(MsgClass::LargeCMessage));
    row.smallC = double(t.messages(MsgClass::SmallCMessage));
    return row;
}

inline void
runTrafficFigure(const char* figure, const std::vector<AppSpec>& suite,
                 const Options& opt)
{
    banner(figure, "message count and mix, normalized to TCC, 64p");

    constexpr ProtocolKind kProtos[] = {
        ProtocolKind::ScalableBulk, ProtocolKind::TCC, ProtocolKind::SEQ,
        ProtocolKind::BulkSC};

    std::printf("%-14s %-13s %8s %8s %9s %11s %8s %8s\n", "app", "protocol",
                "total%", "MemRd%", "RemShRd%", "RemDirtyRd%", "LargeC%",
                "SmallC%");

    for (const AppSpec* app : opt.select(suite)) {
        TrafficRow rows[4];
        for (int pi = 0; pi < 4; ++pi)
            rows[pi] = classify(run(*app, 64, kProtos[pi], opt).traffic);
        const double tcc_total = rows[1].total();
        for (int pi = 0; pi < 4; ++pi) {
            const TrafficRow& r = rows[pi];
            std::printf(
                "%-14s %-13s %7.1f%% %7.1f%% %8.1f%% %10.1f%% %7.1f%% %7.1f%%\n",
                app->name.c_str(), protocolName(kProtos[pi]),
                100 * r.total() / tcc_total, 100 * r.memRd / tcc_total,
                100 * r.remoteSh / tcc_total,
                100 * r.remoteDirty / tcc_total, 100 * r.largeC / tcc_total,
                100 * r.smallC / tcc_total);
        }
    }
}

} // namespace bench
} // namespace sbulk

#endif // SBULK_BENCH_TRAFFIC_FIGURE_HH
