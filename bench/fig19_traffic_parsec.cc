/**
 * @file
 * Figure 19 (PARSEC message characterization); see traffic_figure.hh.
 */

#include "bench/traffic_figure.hh"

int
main(int argc, char** argv)
{
    using namespace sbulk;
    using namespace sbulk::bench;
    const Options opt = Options::parse(argc, argv);
    runTrafficFigure("Figure 19 (PARSEC message characterization)", parsecApps(), opt);
    return 0;
}
