/**
 * @file
 * Figure 7: execution times of the SPLASH-2 programs under ScalableBulk,
 * TCC, SEQ, and BulkSC at 32/64 processors, normalized to single-processor
 * runs, with the Useful / Cache Miss / Commit / Squash breakdown.
 */

#include "bench/exec_figure.hh"

int
main(int argc, char** argv)
{
    using namespace sbulk;
    using namespace sbulk::bench;
    const Options opt = Options::parse(argc, argv);
    runExecFigure("Figure 7 (SPLASH-2 execution time)", splash2Apps(), opt);
    return 0;
}
