/**
 * @file
 * Shared implementation of Figures 7 and 8: execution time of every
 * application under the four protocols at 32 and 64 processors, normalized
 * to a one-processor ScalableBulk run of the same total work, broken into
 * the paper's four categories (Useful / Cache Miss / Commit / Squash).
 */

#ifndef SBULK_BENCH_EXEC_FIGURE_HH
#define SBULK_BENCH_EXEC_FIGURE_HH

#include "bench/common.hh"

namespace sbulk
{
namespace bench
{

inline void
runExecFigure(const char* figure, const std::vector<AppSpec>& suite,
              const Options& opt)
{
    banner(figure,
           "normalized execution time and speedups, 4 protocols x {32,64}p");

    constexpr ProtocolKind kProtos[] = {
        ProtocolKind::ScalableBulk, ProtocolKind::TCC, ProtocolKind::SEQ,
        ProtocolKind::BulkSC};

    std::printf("%-14s %5s %-13s %8s %8s %8s %8s %8s %8s\n", "app", "procs",
                "protocol", "normTime", "useful", "cacheMiss", "commit",
                "squash", "speedup");

    // Per-protocol running sums for the AVERAGE rows.
    struct Sum
    {
        double norm = 0, useful = 0, miss = 0, commit = 0, squash = 0,
               speedup = 0;
        int n = 0;
    };
    Sum sums[4][2]; // [protocol][procs index]

    for (const AppSpec* app : opt.select(suite)) {
        // The paper's baseline: the same total work on one processor
        // running ScalableBulk.
        const RunResult base =
            run(*app, 1, ProtocolKind::ScalableBulk, opt);

        for (int pi = 0; pi < 4; ++pi) {
            for (int si = 0; si < 2; ++si) {
                const std::uint32_t procs = si == 0 ? 32 : 64;
                const RunResult r = run(*app, procs, kProtos[pi], opt);
                const double norm =
                    double(r.makespan) / double(base.makespan);
                const double total = r.breakdown.total();
                const double f_useful = r.breakdown.useful / total;
                const double f_miss = r.breakdown.cacheMiss / total;
                const double f_commit = r.breakdown.commit / total;
                const double f_squash = r.breakdown.squash / total;
                const double sp = speedup(base, r);
                std::printf(
                    "%-14s %5u %-13s %8.4f %7.1f%% %8.1f%% %7.1f%% %7.1f%% %8.1f\n",
                    app->name.c_str(), procs, protocolName(kProtos[pi]),
                    norm, 100 * f_useful, 100 * f_miss, 100 * f_commit,
                    100 * f_squash, sp);
                Sum& s = sums[pi][si];
                s.norm += norm;
                s.useful += f_useful;
                s.miss += f_miss;
                s.commit += f_commit;
                s.squash += f_squash;
                s.speedup += sp;
                ++s.n;
            }
        }
    }

    std::printf("\n-- AVERAGE over applications --\n");
    for (int pi = 0; pi < 4; ++pi) {
        for (int si = 0; si < 2; ++si) {
            const Sum& s = sums[pi][si];
            if (s.n == 0)
                continue;
            std::printf(
                "%-14s %5u %-13s %8.4f %7.1f%% %8.1f%% %7.1f%% %7.1f%% %8.1f\n",
                "AVERAGE", si == 0 ? 32 : 64, protocolName(kProtos[pi]),
                s.norm / s.n, 100 * s.useful / s.n, 100 * s.miss / s.n,
                100 * s.commit / s.n, 100 * s.squash / s.n,
                s.speedup / s.n);
        }
    }
}

} // namespace bench
} // namespace sbulk

#endif // SBULK_BENCH_EXEC_FIGURE_HH
