/**
 * @file
 * Figure 9 (SPLASH-2 directories per commit); see dirs_figure.hh.
 */

#include "bench/dirs_figure.hh"

int
main(int argc, char** argv)
{
    using namespace sbulk;
    using namespace sbulk::bench;
    const Options opt = Options::parse(argc, argv);
    runDirsAverageFigure("Figure 9 (SPLASH-2 directories per commit)", splash2Apps(), opt);
    return 0;
}
