/**
 * @file
 * Shared implementation of Figures 14/15 (bottleneck ratio: chunks forming
 * groups over chunks committing, sampled at each group formation) and
 * Figures 16/17 (chunk queue length in TCC and SEQ).
 */

#ifndef SBULK_BENCH_SERIALIZATION_FIGURE_HH
#define SBULK_BENCH_SERIALIZATION_FIGURE_HH

#include "bench/common.hh"

namespace sbulk
{
namespace bench
{

/** Figures 14/15: bottleneck ratio for ScalableBulk, TCC, SEQ. */
inline void
runBottleneckFigure(const char* figure, const std::vector<AppSpec>& suite,
                    const Options& opt)
{
    banner(figure, "bottleneck ratio (forming / committing), {32,64}p");
    std::printf("%-14s %5s %14s %10s %10s\n", "app", "procs",
                "ScalableBulk", "TCC", "SEQ");
    double sums[3][2] = {};
    int n[2] = {0, 0};
    for (const AppSpec* app : opt.select(suite)) {
        for (int si = 0; si < 2; ++si) {
            const std::uint32_t procs = si == 0 ? 32 : 64;
            const RunResult sb =
                run(*app, procs, ProtocolKind::ScalableBulk, opt);
            const RunResult tcc = run(*app, procs, ProtocolKind::TCC, opt);
            const RunResult seq = run(*app, procs, ProtocolKind::SEQ, opt);
            std::printf("%-14s %5u %14.2f %10.2f %10.2f\n",
                        app->name.c_str(), procs, sb.bottleneckRatio,
                        tcc.bottleneckRatio, seq.bottleneckRatio);
            sums[0][si] += sb.bottleneckRatio;
            sums[1][si] += tcc.bottleneckRatio;
            sums[2][si] += seq.bottleneckRatio;
            ++n[si];
        }
    }
    for (int si = 0; si < 2; ++si) {
        if (n[si] == 0)
            continue;
        std::printf("%-14s %5u %14.2f %10.2f %10.2f\n", "AVERAGE",
                    si == 0 ? 32 : 64, sums[0][si] / n[si],
                    sums[1][si] / n[si], sums[2][si] / n[si]);
    }
}

/** Figures 16/17: chunk queue length in TCC and SEQ. */
inline void
runQueueFigure(const char* figure, const std::vector<AppSpec>& suite,
               const Options& opt)
{
    banner(figure, "chunk queue length (TCC, SEQ), {32,64}p");
    std::printf("%-14s %5s %10s %10s\n", "app", "procs", "TCC", "SEQ");
    double sums[2][2] = {};
    int n[2] = {0, 0};
    for (const AppSpec* app : opt.select(suite)) {
        for (int si = 0; si < 2; ++si) {
            const std::uint32_t procs = si == 0 ? 32 : 64;
            const RunResult tcc = run(*app, procs, ProtocolKind::TCC, opt);
            const RunResult seq = run(*app, procs, ProtocolKind::SEQ, opt);
            std::printf("%-14s %5u %10.2f %10.2f\n", app->name.c_str(),
                        procs, tcc.chunkQueueLength, seq.chunkQueueLength);
            sums[0][si] += tcc.chunkQueueLength;
            sums[1][si] += seq.chunkQueueLength;
            ++n[si];
        }
    }
    for (int si = 0; si < 2; ++si) {
        if (n[si] == 0)
            continue;
        std::printf("%-14s %5u %10.2f %10.2f\n", "AVERAGE",
                    si == 0 ? 32 : 64, sums[0][si] / n[si],
                    sums[1][si] / n[si]);
    }
}

} // namespace bench
} // namespace sbulk

#endif // SBULK_BENCH_SERIALIZATION_FIGURE_HH
