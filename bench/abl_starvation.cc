/**
 * @file
 * Ablation: the starvation threshold MAX (Section 3.2.2) and the leader-
 * priority rotation interval.
 *
 * MAX controls when a directory reserves itself for a repeatedly-failing
 * chunk; rotation moves the priority origin so processors near low-
 * numbered modules stop winning systematically. Measured on the most
 * collision-prone workload (Radix, 64p): tail commit latency and the
 * spread of per-commit attempts.
 */

#include "bench/common.hh"

int
main(int argc, char** argv)
{
    using namespace sbulk;
    using namespace sbulk::bench;
    Options opt = Options::parse(argc, argv);
    banner("Ablation (starvation MAX / leader rotation)",
           "fairness primitives of Section 3.2.2 on Radix @ 64p");

    const AppSpec* app = findApp("Radix");

    std::printf("%-10s %10s %10s %8s %12s %12s\n", "MAX", "makespan",
                "latMean", "latP90", "reservations", "fails");
    for (std::uint32_t max : {4u, 8u, 24u, 64u, 1u << 30}) {
        RunConfig cfg;
        cfg.app = app;
        cfg.procs = 64;
        cfg.totalChunks = opt.chunks;
        cfg.proto.starvationMax = max;
        const RunResult r = runExperiment(cfg);
        char label[16];
        if (max == 1u << 30)
            std::snprintf(label, sizeof label, "off");
        else
            std::snprintf(label, sizeof label, "%u", max);
        std::printf("%-10s %10llu %10.1f %8llu %12s %12llu\n", label,
                    (unsigned long long)r.makespan, r.commitLatencyMean,
                    (unsigned long long)r.commitLatency.percentile(0.9),
                    "-", (unsigned long long)r.commitFailures);
    }

    std::printf("\n%-10s %10s %10s %8s %12s\n", "rotation", "makespan",
                "latMean", "latP90", "fails");
    for (Tick interval : {Tick(0), Tick(2000), Tick(10000), Tick(50000)}) {
        RunConfig cfg;
        cfg.app = app;
        cfg.procs = 64;
        cfg.totalChunks = opt.chunks;
        cfg.proto.leaderRotationInterval = interval;
        const RunResult r = runExperiment(cfg);
        char label[16];
        if (interval == 0)
            std::snprintf(label, sizeof label, "off");
        else
            std::snprintf(label, sizeof label, "%llu",
                          (unsigned long long)interval);
        std::printf("%-10s %10llu %10.1f %8llu %12llu\n", label,
                    (unsigned long long)r.makespan, r.commitLatencyMean,
                    (unsigned long long)r.commitLatency.percentile(0.9),
                    (unsigned long long)r.commitFailures);
    }
    return 0;
}
