/**
 * @file
 * Micro-benchmarks of the hot simulator primitives: signature insert,
 * membership, intersection (the operation every directory performs per
 * commit compatibility check), and union.
 */

#include <benchmark/benchmark.h>

#include "sig/signature.hh"
#include "sim/random.hh"

namespace
{

using namespace sbulk;

void
BM_SignatureInsert(benchmark::State& state)
{
    Rng rng(1);
    Signature sig;
    Addr a = 0x12345;
    for (auto _ : state) {
        sig.insert(a);
        a = a * 6364136223846793005ull + 1;
    }
}
BENCHMARK(BM_SignatureInsert);

void
BM_SignatureContains(benchmark::State& state)
{
    Rng rng(2);
    Signature sig;
    for (int i = 0; i < int(state.range(0)); ++i)
        sig.insert(rng.next() >> 7);
    Addr a = 0x98765;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sig.contains(a));
        a = a * 6364136223846793005ull + 1;
    }
}
BENCHMARK(BM_SignatureContains)->Arg(8)->Arg(32)->Arg(128);

void
BM_SignatureIntersects(benchmark::State& state)
{
    Rng rng(3);
    Signature a, b;
    for (int i = 0; i < int(state.range(0)); ++i) {
        a.insert(rng.next() >> 7);
        b.insert(rng.next() >> 7);
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(a.intersects(b));
}
BENCHMARK(BM_SignatureIntersects)->Arg(8)->Arg(32)->Arg(128);

void
BM_SignatureUnion(benchmark::State& state)
{
    Rng rng(4);
    Signature a, b;
    for (int i = 0; i < 64; ++i)
        b.insert(rng.next() >> 7);
    for (auto _ : state) {
        Signature c = a;
        c.unionWith(b);
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_SignatureUnion);

void
BM_CompatibilityCheck(benchmark::State& state)
{
    // The full Section 3.2.1 test a directory runs per admitted entry.
    Rng rng(5);
    Signature r0, w0, r1, w1;
    for (int i = 0; i < 30; ++i) {
        r0.insert(rng.next() >> 7);
        r1.insert(rng.next() >> 7);
    }
    for (int i = 0; i < 12; ++i) {
        w0.insert(rng.next() >> 7);
        w1.insert(rng.next() >> 7);
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(chunksCompatible(r0, w0, r1, w1));
}
BENCHMARK(BM_CompatibilityCheck);

} // namespace

BENCHMARK_MAIN();
