/**
 * @file
 * Figure 11 (SPLASH-2 directory-count distribution); see dirs_figure.hh.
 */

#include "bench/dirs_figure.hh"

int
main(int argc, char** argv)
{
    using namespace sbulk;
    using namespace sbulk::bench;
    const Options opt = Options::parse(argc, argv);
    runDirsDistributionFigure("Figure 11 (SPLASH-2 directory-count distribution)", splash2Apps(), opt);
    return 0;
}
