/**
 * @file
 * Scalability study beyond the paper's two machine sizes: speedup and
 * commit overhead for all four protocols from 2 to 64 processors on three
 * representative codes (local LU, irregular Barnes, scatter-write Radix).
 *
 * The paper's Figures 7/8 sample only 32 and 64; the full curve shows
 * *where* each baseline departs from ScalableBulk: SEQ already at 16-32
 * on scatter codes, TCC at 32-64, BulkSC wherever the arbiter saturates.
 */

#include "bench/common.hh"

int
main(int argc, char** argv)
{
    using namespace sbulk;
    using namespace sbulk::bench;
    Options opt = Options::parse(argc, argv);
    banner("Scaling study (extension)",
           "speedup & commit overhead, 2..64 processors");

    const char* kApps[] = {"LU", "Barnes", "Radix"};
    constexpr ProtocolKind kProtos[] = {
        ProtocolKind::ScalableBulk, ProtocolKind::TCC, ProtocolKind::SEQ,
        ProtocolKind::BulkSC};

    std::printf("%-10s %-13s %5s %10s %8s %9s\n", "app", "protocol",
                "procs", "makespan", "speedup", "commit%");
    for (const char* name : kApps) {
        if (!opt.onlyApp.empty() && opt.onlyApp != name)
            continue;
        const AppSpec* app = findApp(name);
        const RunResult base = run(*app, 1, ProtocolKind::ScalableBulk,
                                   opt);
        for (ProtocolKind proto : kProtos) {
            for (std::uint32_t procs : {2u, 4u, 8u, 16u, 32u, 64u}) {
                const RunResult r = run(*app, procs, proto, opt);
                std::printf("%-10s %-13s %5u %10llu %8.1f %8.1f%%\n", name,
                            protocolName(proto), procs,
                            (unsigned long long)r.makespan,
                            speedup(base, r),
                            100.0 * r.breakdown.commit /
                                r.breakdown.total());
            }
        }
    }
    return 0;
}
