/**
 * @file
 * Scalability study beyond the paper's two machine sizes: speedup and
 * commit overhead for all four protocols on three representative codes
 * (local LU, irregular Barnes, scatter-write Radix), at any list of
 * machine sizes — the paper's 2..64 by default, and past it (256, 1024)
 * with the sparse directory + parallel-in-run event kernel:
 *
 *   scaling_study --procs 64,256,1024 --shards 8
 *
 * The paper's Figures 7/8 sample only 32 and 64; the full curve shows
 * *where* each baseline departs from ScalableBulk: SEQ already at 16-32
 * on scatter codes, TCC at 32-64, BulkSC wherever the arbiter saturates.
 * With --shards N each run executes on the sharded conservative-PDES
 * kernel (statistics are identical to any other shard count >= 2) and
 * the table gains wall-clock and per-shard utilization columns.
 */

#include <cstdlib>

#include "bench/common.hh"
#include "sim/parallel.hh"

namespace
{

using namespace sbulk;
using namespace sbulk::bench;

struct StudyOptions
{
    Options base;
    std::vector<std::uint32_t> procs = {2, 4, 8, 16, 32, 64};
    std::uint32_t shards = 1;
    std::string shardMap;
};

StudyOptions
parseStudy(int argc, char** argv)
{
    StudyOptions opt;
    std::vector<char*> passthrough = {argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--procs") && i + 1 < argc) {
            opt.procs.clear();
            for (const char* tok = std::strtok(argv[++i], ","); tok;
                 tok = std::strtok(nullptr, ","))
                opt.procs.push_back(std::uint32_t(std::atoi(tok)));
            if (opt.procs.empty()) {
                std::fprintf(stderr, "--procs needs a list\n");
                std::exit(2);
            }
        } else if (!std::strcmp(argv[i], "--shards") && i + 1 < argc) {
            opt.shards = std::uint32_t(std::atoi(argv[++i]));
        } else if (!std::strcmp(argv[i], "--shard-map") && i + 1 < argc) {
            opt.shardMap = argv[++i];
        } else {
            passthrough.push_back(argv[i]);
        }
    }
    opt.base = Options::parse(int(passthrough.size()), passthrough.data());
    return opt;
}

/** "97/93/95%" — one utilization figure per shard. */
std::string
utilColumn(const RunResult& r)
{
    if (r.shardStats.empty())
        return "-";
    std::string out;
    char buf[16];
    for (std::size_t s = 0; s < r.shardStats.size(); ++s) {
        const double util =
            r.shardWallSec > 0
                ? 100.0 * r.shardStats[s].busySec / r.shardWallSec
                : 0.0;
        std::snprintf(buf, sizeof(buf), "%s%.0f", s ? "/" : "", util);
        out += buf;
    }
    return out + "%";
}

/** "3/5/2%" — barrier-stall share of the window loop, per shard. */
std::string
stallColumn(const RunResult& r)
{
    if (r.shardStats.empty())
        return "-";
    std::string out;
    char buf[16];
    for (std::size_t s = 0; s < r.shardStats.size(); ++s) {
        const double stall =
            r.shardWallSec > 0
                ? 100.0 * r.shardStats[s].stallSec / r.shardWallSec
                : 0.0;
        std::snprintf(buf, sizeof(buf), "%s%.0f", s ? "/" : "", stall);
        out += buf;
    }
    return out + "%";
}

/** "88/91/85%" — share of windows that executed at least one event. */
std::string
occupancyColumn(const RunResult& r)
{
    if (r.shardStats.empty())
        return "-";
    std::string out;
    char buf[16];
    for (std::size_t s = 0; s < r.shardStats.size(); ++s) {
        const auto& st = r.shardStats[s];
        const double occ =
            st.windows
                ? 100.0 * double(st.windows - st.emptyWindows) /
                      double(st.windows)
                : 0.0;
        std::snprintf(buf, sizeof(buf), "%s%.0f", s ? "/" : "", occ);
        out += buf;
    }
    return out + "%";
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace sbulk;
    using namespace sbulk::bench;
    StudyOptions opt = parseStudy(argc, argv);
    setShardThreadFactor(opt.shards);
    banner("Scaling study (extension)",
           "speedup & commit overhead across machine sizes");

    const char* kApps[] = {"LU", "Barnes", "Radix"};
    constexpr ProtocolKind kProtos[] = {
        ProtocolKind::ScalableBulk, ProtocolKind::TCC, ProtocolKind::SEQ,
        ProtocolKind::BulkSC};

    std::printf("%-10s %-13s %5s %10s %8s %9s %9s %8s %-12s %-10s "
                "%-12s\n",
                "app", "protocol", "procs", "makespan", "speedup",
                "commit%", "cmtLat", "wallSec", "shardUtil", "stall",
                "occupancy");
    for (const char* name : kApps) {
        if (!opt.base.onlyApp.empty() && opt.base.onlyApp != name)
            continue;
        const AppSpec* app = findApp(name);
        const RunResult base =
            run(*app, 1, ProtocolKind::ScalableBulk, opt.base);
        for (ProtocolKind proto : kProtos) {
            for (std::uint32_t procs : opt.procs) {
                RunConfig cfg;
                cfg.app = app;
                cfg.procs = procs;
                cfg.protocol = proto;
                cfg.totalChunks = opt.base.chunks;
                cfg.shards = std::min(opt.shards, procs);
                if (cfg.shards > 1)
                    cfg.shardMap = opt.shardMap;
                const RunResult r = runExperiment(cfg);
                std::printf("%-10s %-13s %5u %10llu %8.1f %8.1f%% %9.1f "
                            "%8.2f %-12s %-10s %-12s\n",
                            name, protocolName(proto), procs,
                            (unsigned long long)r.makespan,
                            speedup(base, r),
                            100.0 * r.breakdown.commit /
                                r.breakdown.total(),
                            r.commitLatencyMean, r.wallSec,
                            utilColumn(r).c_str(),
                            stallColumn(r).c_str(),
                            occupancyColumn(r).c_str());
                std::fflush(stdout);
            }
        }
    }
    return 0;
}
