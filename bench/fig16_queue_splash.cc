/**
 * @file
 * Figure 16 (SPLASH-2 chunk queue length); see serialization_figure.hh.
 */

#include "bench/serialization_figure.hh"

int
main(int argc, char** argv)
{
    using namespace sbulk;
    using namespace sbulk::bench;
    const Options opt = Options::parse(argc, argv);
    runQueueFigure("Figure 16 (SPLASH-2 chunk queue length)", splash2Apps(), opt);
    return 0;
}
