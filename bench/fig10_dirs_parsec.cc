/**
 * @file
 * Figure 10 (PARSEC directories per commit); see dirs_figure.hh.
 */

#include "bench/dirs_figure.hh"

int
main(int argc, char** argv)
{
    using namespace sbulk;
    using namespace sbulk::bench;
    const Options opt = Options::parse(argc, argv);
    runDirsAverageFigure("Figure 10 (PARSEC directories per commit)", parsecApps(), opt);
    return 0;
}
