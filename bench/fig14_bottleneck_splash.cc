/**
 * @file
 * Figure 14 (SPLASH-2 bottleneck ratio); see serialization_figure.hh.
 */

#include "bench/serialization_figure.hh"

int
main(int argc, char** argv)
{
    using namespace sbulk;
    using namespace sbulk::bench;
    const Options opt = Options::parse(argc, argv);
    runBottleneckFigure("Figure 14 (SPLASH-2 bottleneck ratio)", splash2Apps(), opt);
    return 0;
}
