/**
 * @file
 * Ablation: chunk size — the paper's Section 2.2 argument.
 *
 * Scalable TCC and SRC reported commit as a non-issue using 10K-40K
 * instruction transactions; this paper's environment runs unmodified code
 * as 2000-instruction chunks, committing an order of magnitude more often.
 * The sweep shows commit overhead of the serializing protocols melting
 * away as chunks grow — and ScalableBulk flat at every size.
 */

#include "bench/common.hh"

int
main(int argc, char** argv)
{
    using namespace sbulk;
    using namespace sbulk::bench;
    Options opt = Options::parse(argc, argv);
    banner("Ablation (chunk size)",
           "Section 2.2: commit criticality vs. chunk size, Radix @ 64p");

    const AppSpec* app = findApp(opt.onlyApp.empty() ? "Radix"
                                                     : opt.onlyApp.c_str());
    SBULK_ASSERT(app != nullptr);

    constexpr ProtocolKind kProtos[] = {
        ProtocolKind::ScalableBulk, ProtocolKind::TCC, ProtocolKind::SEQ};

    std::printf("%-13s %8s %10s %9s %9s %7s\n", "protocol", "chunk",
                "makespan", "commitLat", "commit%", "dirs");
    for (ProtocolKind proto : kProtos) {
        for (std::uint32_t instrs : {500u, 1000u, 2000u, 4000u, 8000u,
                                     16000u}) {
            RunConfig cfg;
            cfg.app = app;
            cfg.procs = 64;
            cfg.protocol = proto;
            cfg.chunkInstrs = instrs;
            // Keep total instructions fixed across the sweep.
            cfg.totalChunks =
                std::max<std::uint64_t>(64, opt.chunks * 2000 / instrs);
            const RunResult r = runExperiment(cfg);
            std::printf(
                "%-13s %8u %10llu %9.0f %8.1f%% %7.1f\n",
                protocolName(proto), instrs,
                (unsigned long long)r.makespan, r.commitLatencyMean,
                100.0 * r.breakdown.commit / r.breakdown.total(),
                r.dirsPerCommitMean);
        }
    }
    std::printf("\nLarger chunks commit less often (and touch more\n"
                "directories); the serializing protocols' commit share\n"
                "shrinks toward Scalable TCC's reported regime, while\n"
                "ScalableBulk is already flat at 2000 instructions.\n");
    return 0;
}
