/**
 * @file
 * Figure 18 (SPLASH-2 message characterization); see traffic_figure.hh.
 */

#include "bench/traffic_figure.hh"

int
main(int argc, char** argv)
{
    using namespace sbulk;
    using namespace sbulk::bench;
    const Options opt = Options::parse(argc, argv);
    runTrafficFigure("Figure 18 (SPLASH-2 message characterization)", splash2Apps(), opt);
    return 0;
}
