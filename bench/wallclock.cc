/**
 * @file
 * Wall-clock perf harness for the simulator hot paths (see EXPERIMENTS.md,
 * "Benchmarking & perf trajectory").
 *
 * Unlike the google-benchmark micro benches (micro_simcore, micro_signature),
 * this binary exists to feed scripts/bench.py: it times the four throughput
 * numbers the repo tracks across PRs and emits them as a flat JSON object —
 *
 *   - simcore_events_per_sec   EventQueue schedule/cancel/run throughput
 *   - signature_mops_per_sec   Signature insert/contains/intersect mix
 *   - torus_messages_per_sec   end-to-end 64-tile torus deliveries
 *   - sweep_seconds_serial     a fixed sweep matrix, one worker
 *   - sweep_seconds_parallel   the same matrix under --jobs workers
 *
 * Workloads are fixed and deterministic so runs are comparable; wall time
 * is the only non-deterministic output. --quick shrinks every workload
 * (CI smoke); absolute numbers are machine-specific and only comparable
 * against baselines recorded on the same machine class.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "net/network.hh"
#include "sig/signature.hh"
#include "sim/event_queue.hh"
#include "sim/parallel.hh"
#include "sim/random.hh"
#include "system/experiment.hh"

namespace
{

using namespace sbulk;

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/**
 * Event-kernel throughput: a self-refilling queue with same-tick bursts
 * (exercising the FIFO tie-break path) and a cancellation stream
 * (exercising handle bookkeeping), the mix the protocol layer produces.
 */
double
benchSimcore(std::uint64_t target_events)
{
    EventQueue eq;
    std::uint64_t fired = 0;
    // 64 self-rescheduling chains with coprime periods keep a steady
    // population of pending events with frequent same-tick collisions.
    std::function<void(int)> tick = [&](int lane) {
        ++fired;
        if (fired + 64 <= target_events)
            eq.scheduleIn(1 + Tick(lane % 7), [&tick, lane] { tick(lane); });
        // Every fourth firing schedules a decoy and cancels it — the
        // timeout-descheduling pattern the protocols use constantly.
        if ((fired & 3) == 0) {
            auto h = eq.scheduleIn(5, [&fired] { ++fired; });
            eq.cancel(h);
        }
    };
    const auto start = Clock::now();
    for (int lane = 0; lane < 64; ++lane)
        eq.schedule(Tick(lane % 5), [&tick, lane] { tick(lane); });
    eq.run();
    const double secs = secondsSince(start);
    return double(fired) / secs;
}

/**
 * Signature-op throughput on the default 2-Kbit geometry: the
 * insert/membership/intersection/compatibility mix a directory module
 * performs per admitted commit (Section 3.2.1).
 */
double
benchSignature(std::uint64_t iterations)
{
    Rng rng(21);
    Signature r0, w0, r1, w1;
    for (int i = 0; i < 30; ++i) {
        r0.insert(rng.next() >> 7);
        r1.insert(rng.next() >> 7);
    }
    for (int i = 0; i < 12; ++i) {
        w0.insert(rng.next() >> 7);
        w1.insert(rng.next() >> 7);
    }
    Signature scratch;
    Addr a = 0x12345;
    std::uint64_t ops = 0;
    std::uint64_t sink = 0;
    const auto start = Clock::now();
    for (std::uint64_t i = 0; i < iterations; ++i) {
        a = a * 6364136223846793005ull + 1;
        scratch.insert(a >> 7);
        sink += scratch.contains((a >> 7) ^ 0x55);
        sink += r0.intersects(w1);
        sink += chunksCompatible(r0, w0, r1, w1); // 3 intersections
        ops += 6;
        if ((i & 255) == 255) {
            scratch.unionWith(w0);
            scratch.clear();
            ops += 2;
        }
    }
    const double secs = secondsSince(start);
    if (sink == 0xdeadbeef)
        std::fprintf(stderr, "impossible\n"); // defeat dead-code elimination
    return double(ops) / secs / 1e6;
}

/** Torus delivery throughput: uniform-random traffic on the 64-tile mesh
 *  of Table 2, a mix of small (control) and large (signature) messages. */
double
benchTorus(std::uint64_t target_messages)
{
    EventQueue eq;
    TorusNetwork net(eq, 64);
    std::uint64_t delivered = 0;
    for (NodeId n = 0; n < 64; ++n)
        net.registerHandler(n, Port::Dir,
                            [&delivered](MessagePtr) { ++delivered; });
    Rng rng(7);
    const auto start = Clock::now();
    std::uint64_t sent = 0;
    while (sent < target_messages) {
        for (int i = 0; i < 256 && sent < target_messages; ++i, ++sent) {
            const NodeId src = NodeId(rng.below(64));
            const NodeId dst = NodeId(rng.below(64));
            const bool large = (sent & 7) == 0;
            net.send(std::make_unique<Message>(
                src, dst, Port::Dir,
                large ? MsgClass::LargeCMessage : MsgClass::SmallCMessage, 0,
                large ? 64 : 8));
        }
        eq.run();
    }
    const double secs = secondsSince(start);
    if (delivered != sent)
        std::fprintf(stderr, "torus bench lost messages\n");
    return double(delivered) / secs;
}

/** The fixed sweep matrix timed end-to-end (the binding constraint on how
 *  much of the paper's design space one CI run can cover). */
std::vector<RunConfig>
sweepMatrix(bool quick)
{
    const std::vector<const char*> app_names = {"Radix", "LU"};
    const std::vector<ProtocolKind> protocols = {
        ProtocolKind::ScalableBulk, ProtocolKind::TCC, ProtocolKind::SEQ,
        ProtocolKind::BulkSC};
    const std::vector<std::uint32_t> procs = quick
                                                 ? std::vector<std::uint32_t>{16}
                                                 : std::vector<std::uint32_t>{16, 32};
    std::vector<RunConfig> matrix;
    for (const char* name : app_names) {
        const AppSpec* app = findApp(name);
        if (!app) {
            std::fprintf(stderr, "sweep matrix app '%s' missing\n", name);
            std::exit(1);
        }
        for (ProtocolKind proto : protocols) {
            for (std::uint32_t p : procs) {
                RunConfig cfg;
                cfg.app = app;
                cfg.procs = p;
                cfg.protocol = proto;
                cfg.totalChunks = quick ? 128 : 512;
                matrix.push_back(cfg);
            }
        }
    }
    return matrix;
}

double
benchSweep(const std::vector<RunConfig>& matrix, unsigned jobs)
{
    std::vector<Tick> makespans(matrix.size(), 0);
    const auto start = Clock::now();
    parallelFor(matrix.size(), jobs, [&](std::size_t i) {
        makespans[i] = runExperiment(matrix[i]).makespan;
    });
    const double secs = secondsSince(start);
    for (Tick m : makespans)
        if (m == 0)
            std::fprintf(stderr, "sweep bench produced a zero makespan\n");
    return secs;
}

} // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    unsigned jobs = defaultJobs();
    const char* json_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        const char* a = argv[i];
        if (!std::strcmp(a, "--quick")) {
            quick = true;
        } else if (!std::strcmp(a, "--jobs") && i + 1 < argc) {
            jobs = unsigned(std::atoi(argv[++i]));
            if (jobs == 0)
                jobs = defaultJobs();
        } else if (!std::strcmp(a, "--json") && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: wallclock [--quick] [--jobs N] "
                         "[--json FILE]\n");
            return 2;
        }
    }

    const std::uint64_t ev_target = quick ? 2'000'000 : 10'000'000;
    const std::uint64_t sig_iters = quick ? 400'000 : 2'000'000;
    const std::uint64_t msg_target = quick ? 200'000 : 1'000'000;

    const double events_per_sec = benchSimcore(ev_target);
    const double sig_mops = benchSignature(sig_iters);
    const double msgs_per_sec = benchTorus(msg_target);
    const std::vector<RunConfig> matrix = sweepMatrix(quick);
    const double sweep_serial = benchSweep(matrix, 1);
    const double sweep_parallel =
        jobs > 1 ? benchSweep(matrix, jobs) : sweep_serial;

    char buf[1024];
    std::snprintf(
        buf, sizeof buf,
        "{\n"
        "  \"quick\": %s,\n"
        "  \"jobs\": %u,\n"
        "  \"simcore_events_per_sec\": %.0f,\n"
        "  \"signature_mops_per_sec\": %.2f,\n"
        "  \"torus_messages_per_sec\": %.0f,\n"
        "  \"sweep_runs\": %zu,\n"
        "  \"sweep_seconds_serial\": %.3f,\n"
        "  \"sweep_seconds_parallel\": %.3f\n"
        "}\n",
        quick ? "true" : "false", jobs, events_per_sec, sig_mops,
        msgs_per_sec, matrix.size(), sweep_serial, sweep_parallel);

    if (json_path && std::strcmp(json_path, "-")) {
        std::FILE* f = std::fopen(json_path, "w");
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n", json_path);
            return 1;
        }
        std::fputs(buf, f);
        std::fclose(f);
    }
    std::fputs(buf, stdout);
    return 0;
}
