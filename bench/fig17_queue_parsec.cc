/**
 * @file
 * Figure 17 (PARSEC chunk queue length); see serialization_figure.hh.
 */

#include "bench/serialization_figure.hh"

int
main(int argc, char** argv)
{
    using namespace sbulk;
    using namespace sbulk::bench;
    const Options opt = Options::parse(argc, argv);
    runQueueFigure("Figure 17 (PARSEC chunk queue length)", parsecApps(), opt);
    return 0;
}
