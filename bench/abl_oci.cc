/**
 * @file
 * Ablation: Optimistic Commit Initiation (Section 3.3) on vs. off.
 *
 * With OCI off, a processor with an outstanding commit request nacks every
 * incoming bulk invalidation (Figure 4(c)), lengthening the critical path
 * of the *winning* commit. The ablation measures commit latency, recalls,
 * and total time on conflict-prone workloads.
 */

#include "bench/common.hh"

int
main(int argc, char** argv)
{
    using namespace sbulk;
    using namespace sbulk::bench;
    Options opt = Options::parse(argc, argv);
    banner("Ablation (OCI)", "optimistic vs. conservative commit initiation");

    std::printf("%-14s %-5s %10s %10s %9s %9s\n", "app", "oci", "makespan",
                "commitLat", "recalls", "invNacks*");
    std::printf("  (*conservative runs bounce invalidations instead of "
                "recalling)\n");

    for (const AppSpec* app : opt.select(allApps())) {
        for (bool oci : {true, false}) {
            RunConfig cfg;
            cfg.app = app;
            cfg.procs = 64;
            cfg.totalChunks = opt.chunks;
            cfg.proto.oci = oci;
            const RunResult r = runExperiment(cfg);
            std::printf("%-14s %-5s %10llu %10.1f %9llu %9s\n",
                        app->name.c_str(), oci ? "on" : "off",
                        (unsigned long long)r.makespan, r.commitLatencyMean,
                        (unsigned long long)r.commitRecalls,
                        oci ? "-" : "(nacked)");
        }
    }
    return 0;
}
