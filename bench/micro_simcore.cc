/**
 * @file
 * Micro-benchmarks of the simulation substrate: event-queue throughput,
 * torus message delivery, and cache tag-array operations — the per-event
 * costs that bound how many simulated cycles per wall-second the figure
 * benches achieve.
 */

#include <benchmark/benchmark.h>

#include "mem/cache_array.hh"
#include "net/network.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"

namespace
{

using namespace sbulk;

void
BM_EventQueueScheduleRun(benchmark::State& state)
{
    for (auto _ : state) {
        EventQueue eq;
        int sink = 0;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(Tick(i % 97), [&sink] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_TorusMessageDelivery(benchmark::State& state)
{
    EventQueue eq;
    TorusNetwork net(eq, 64);
    std::uint64_t delivered = 0;
    for (NodeId n = 0; n < 64; ++n)
        net.registerHandler(n, Port::Dir,
                            [&delivered](MessagePtr) { ++delivered; });
    Rng rng(7);
    for (auto _ : state) {
        for (int i = 0; i < 100; ++i) {
            const NodeId src = NodeId(rng.below(64));
            const NodeId dst = NodeId(rng.below(64));
            net.send(std::make_unique<Message>(
                src, dst, Port::Dir, MsgClass::SmallCMessage, 0, 8));
        }
        eq.run();
    }
    benchmark::DoNotOptimize(delivered);
    state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_TorusMessageDelivery);

void
BM_CacheLookupHit(benchmark::State& state)
{
    CacheArray cache(CacheConfig{512 * 1024, 8, 32, 8, 64});
    Rng rng(9);
    std::vector<Addr> lines;
    for (int i = 0; i < 256; ++i) {
        Addr line = rng.next() >> 10;
        cache.insert(line, LineState::Shared);
        lines.push_back(line);
    }
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.lookup(lines[i]));
        i = (i + 1) % lines.size();
    }
}
BENCHMARK(BM_CacheLookupHit);

void
BM_CacheSignatureWalk(benchmark::State& state)
{
    // The bulk-invalidation signature walk over a full L1.
    CacheArray cache(CacheConfig{32 * 1024, 4, 32, 2, 8});
    Rng rng(11);
    for (int i = 0; i < 1024; ++i)
        cache.insert(rng.next() >> 10, LineState::Shared);
    Signature w;
    for (int i = 0; i < 16; ++i)
        w.insert(rng.next() >> 10);
    for (auto _ : state) {
        CacheArray copy = cache;
        benchmark::DoNotOptimize(copy.invalidateMatching(w));
    }
}
BENCHMARK(BM_CacheSignatureWalk);

} // namespace

BENCHMARK_MAIN();
