/**
 * @file
 * Ablation: signature size (Table 2 uses 2 Kbit).
 *
 * Smaller signatures alias more: extra group-formation failures and
 * aliasing squashes. Larger ones approach exact sets. The sweep measures
 * the sensitivity the paper's 2.3%-aliasing-squash figure rests on.
 */

#include "bench/common.hh"

int
main(int argc, char** argv)
{
    using namespace sbulk;
    using namespace sbulk::bench;
    Options opt = Options::parse(argc, argv);
    banner("Ablation (signature size)",
           "aliasing squashes and formation failures vs. signature bits");

    // Conflict-prone, many-directory apps show the aliasing most.
    const char* kApps[] = {"Radix", "Barnes", "Canneal"};
    const std::uint32_t kBits[] = {512, 1024, 2048, 4096};

    std::printf("%-14s %6s %10s %10s %10s %10s\n", "app", "bits",
                "makespan", "fails", "aliasSq", "trueSq");
    for (const char* name : kApps) {
        if (!opt.onlyApp.empty() && opt.onlyApp != name)
            continue;
        const AppSpec* app = findApp(name);
        for (std::uint32_t bits : kBits) {
            RunConfig cfg;
            cfg.app = app;
            cfg.procs = 64;
            cfg.totalChunks = opt.chunks;
            cfg.sig = SigConfig{bits, 4};
            const RunResult r = runExperiment(cfg);
            std::printf("%-14s %6u %10llu %10llu %10llu %10llu\n", name,
                        bits, (unsigned long long)r.makespan,
                        (unsigned long long)r.commitFailures,
                        (unsigned long long)r.squashesAliasing,
                        (unsigned long long)r.squashesTrueConflict);
        }
    }
    return 0;
}
