/**
 * @file
 * Figure 13: the distribution of chunk-commit latency for each protocol,
 * aggregated over all applications, at 64 processors — plus the 32- and
 * 64-processor means the paper quotes (Section 6.3: ScalableBulk/TCC/SEQ/
 * BulkSC = 91/411/153/2954 cycles at 64p and 74/402/107/98 at 32p).
 */

#include "bench/common.hh"

int
main(int argc, char** argv)
{
    using namespace sbulk;
    using namespace sbulk::bench;
    const Options opt = Options::parse(argc, argv);
    banner("Figure 13 (commit latency distribution)",
           "all applications, per protocol");

    constexpr ProtocolKind kProtos[] = {
        ProtocolKind::ScalableBulk, ProtocolKind::TCC, ProtocolKind::SEQ,
        ProtocolKind::BulkSC};

    for (ProtocolKind proto : kProtos) {
        Distribution merged(25, 400);
        double mean32_sum = 0, mean64_sum = 0;
        int n = 0;
        for (const AppSpec* app : opt.select(allApps())) {
            const RunResult r64 = run(*app, 64, proto, opt);
            const RunResult r32 = run(*app, 32, proto, opt);
            mean64_sum += r64.commitLatencyMean;
            mean32_sum += r32.commitLatencyMean;
            ++n;
            // Merge the 64p histograms bucket-wise for the distribution.
            const auto& b = r64.commitLatency.buckets();
            for (std::size_t i = 0; i < b.size(); ++i)
                for (std::uint64_t k = 0; k < b[i]; ++k)
                    merged.sample(i * r64.commitLatency.bucketWidth());
        }
        std::printf("\n%s: mean latency  64p = %.0f cycles   32p = %.0f "
                    "cycles  (paper: SB 91/74, TCC 411/402, SEQ 153/107, "
                    "BulkSC 2954/98)\n",
                    protocolName(proto), mean64_sum / n, mean32_sum / n);
        std::printf("  64p distribution (bucket = %llu cycles, %% of "
                    "commits):\n",
                    (unsigned long long)merged.bucketWidth());
        const double total = double(merged.count());
        // Print the first buckets covering most of the mass.
        double cum = 0;
        for (std::size_t i = 0; i < merged.buckets().size() && cum < 99.0;
             ++i) {
            const double pct = 100.0 * double(merged.buckets()[i]) / total;
            cum += pct;
            if (pct >= 0.05) {
                std::printf("    [%6zu..%6zu) %6.2f%%  cum %6.2f%%\n",
                            i * merged.bucketWidth(),
                            (i + 1) * merged.bucketWidth(), pct, cum);
            }
        }
    }
    return 0;
}
