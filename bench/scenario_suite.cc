/**
 * @file
 * The serving-scenario study (see WORKLOADS.md and EXPERIMENTS.md): runs
 * every trace scenario against the four protocols at a serving-shaped
 * configuration and reports the metrics a multi-tenant operator would
 * watch — per-tenant throughput, p50/p99 commit (request) latency, and
 * squash rate — plus the tenant-level breakdown under ScalableBulk,
 * where Zipf tenant skew makes hot-tenant interference visible.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "system/experiment.hh"
#include "trace/scenarios.hh"

namespace
{

using namespace sbulk;

struct Options
{
    std::uint32_t procs = 16;
    std::uint32_t tenants = 8;
    std::uint64_t requests = 2048;
    std::uint64_t seed = 1;
    std::string only;
};

Options
parseArgs(int argc, char** argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--quick")) {
            opt.procs = 8;
            opt.requests = 256;
        } else if (!std::strcmp(argv[i], "--procs") && i + 1 < argc) {
            opt.procs = std::uint32_t(std::strtoul(argv[++i], nullptr, 10));
        } else if (!std::strcmp(argv[i], "--tenants") && i + 1 < argc) {
            opt.tenants =
                std::uint32_t(std::strtoul(argv[++i], nullptr, 10));
        } else if (!std::strcmp(argv[i], "--requests") && i + 1 < argc) {
            opt.requests = std::strtoull(argv[++i], nullptr, 10);
        } else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
            opt.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (!std::strcmp(argv[i], "--scenario") && i + 1 < argc) {
            opt.only = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--quick] [--procs N] [--tenants N] "
                         "[--requests N] [--seed N] [--scenario NAME]\n",
                         argv[0]);
            std::exit(2);
        }
    }
    return opt;
}

RunResult
runScenario(const Options& opt, const char* name, ProtocolKind proto)
{
    RunConfig cfg;
    cfg.scenario = name;
    cfg.procs = opt.procs;
    cfg.protocol = proto;
    cfg.totalChunks = 0; // the generated trace carries the budget
    cfg.scenarioParams.tenants = opt.tenants;
    cfg.scenarioParams.requests = opt.requests;
    cfg.scenarioParams.seed = opt.seed;
    return runExperiment(cfg);
}

} // namespace

int
main(int argc, char** argv)
{
    const Options opt = parseArgs(argc, argv);
    const ProtocolKind kProtos[] = {
        ProtocolKind::ScalableBulk, ProtocolKind::TCC, ProtocolKind::SEQ,
        ProtocolKind::BulkSC};

    std::printf("# Serving-scenario suite: %u cores, %u tenants, "
                "%llu requests, seed %llu\n",
                opt.procs, opt.tenants,
                (unsigned long long)opt.requests,
                (unsigned long long)opt.seed);

    for (const atrace::ScenarioSpec& spec : atrace::allScenarios()) {
        if (!opt.only.empty() && opt.only != spec.name)
            continue;
        std::printf("\n== %s (%s): %s ==\n", spec.name, spec.family,
                    spec.summary);
        std::printf("%-14s %10s %9s %9s %8s %8s %10s\n", "protocol",
                    "makespan", "commits", "squashes", "p50", "p99",
                    "req/Mcyc");

        for (ProtocolKind proto : kProtos) {
            const RunResult r = runScenario(opt, spec.name, proto);
            const double tput =
                r.makespan
                    ? 1e6 * double(r.commits) / double(r.makespan)
                    : 0.0;
            std::uint64_t p50 = 0, p99 = 0;
            for (const RunResult::TenantStats& t : r.tenants) {
                // Protocol-level latency from the merged tenant
                // distributions (finer buckets than RunResult's global
                // commitLatency histogram).
                p50 = std::max(p50, t.commitLatency.percentile(0.50));
                p99 = std::max(p99, t.commitLatency.percentile(0.99));
            }
            std::printf("%-14s %10llu %9llu %9llu %8llu %8llu %10.1f\n",
                        protocolName(proto),
                        (unsigned long long)r.makespan,
                        (unsigned long long)r.commits,
                        (unsigned long long)r.chunksSquashed,
                        (unsigned long long)p50, (unsigned long long)p99,
                        tput);

            if (proto != ProtocolKind::ScalableBulk)
                continue;
            // Tenant breakdown under the paper's protocol: the hot
            // tenants of the Zipf mapping should dominate commits while
            // keeping tail latency close to the cold tenants'.
            std::printf("  %-6s %9s %9s %8s %8s %9s\n", "tenant",
                        "commits", "squashes", "p50", "p99", "sqRate");
            for (const RunResult::TenantStats& t : r.tenants) {
                const std::uint64_t tries = t.commits + t.squashes;
                std::printf("  %-6u %9llu %9llu %8llu %8llu %9.4f\n",
                            t.tenant, (unsigned long long)t.commits,
                            (unsigned long long)t.squashes,
                            (unsigned long long)
                                t.commitLatency.percentile(0.50),
                            (unsigned long long)
                                t.commitLatency.percentile(0.99),
                            tries ? double(t.squashes) / double(tries)
                                  : 0.0);
            }
        }
    }
    return 0;
}
