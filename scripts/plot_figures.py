#!/usr/bin/env python3
"""Plot the paper's key figures from an sbulk-sweep CSV.

Usage:
    ./build/tools/sbulk-sweep > sweep.csv          # (or --chunks 640 for speed)
    python3 scripts/plot_figures.py sweep.csv outdir/

Produces, in the spirit of the paper's evaluation:
    exec_breakdown_{32,64}.png   stacked Useful/CacheMiss/Commit/Squash bars
                                 per app x protocol (Figures 7/8)
    dirs_per_commit.png          write/read-group stacked bars (Figures 9/10)
    commit_latency.png           per-protocol mean latency, 32 vs 64 (Figure 13)
    queue_length.png             TCC/SEQ chunk queue lengths (Figures 16/17)

Requires matplotlib; everything else is the standard library.
"""

import csv
import sys
from collections import defaultdict
from pathlib import Path

try:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
except ImportError:  # pragma: no cover
    sys.exit("matplotlib is required: pip install matplotlib")

PROTOCOLS = ["ScalableBulk", "TCC", "SEQ", "BulkSC"]
CATEGORIES = [
    ("usefulFrac", "Useful", "#4477aa"),
    ("cacheMissFrac", "Cache Miss", "#66ccee"),
    ("commitFrac", "Commit", "#ee6677"),
    ("squashFrac", "Squash", "#aa3377"),
]


def load(path):
    rows = []
    with open(path) as f:
        for row in csv.DictReader(f):
            rows.append(row)
    return rows


def exec_breakdown(rows, procs, out):
    data = [r for r in rows if int(r["procs"]) == procs]
    apps = sorted({r["app"] for r in data})
    if not data:
        return
    fig, ax = plt.subplots(figsize=(max(8, len(apps) * 1.3), 4.5))
    width = 0.8 / len(PROTOCOLS)
    for pi, proto in enumerate(PROTOCOLS):
        xs, bottoms = [], []
        for ai, app in enumerate(apps):
            match = [r for r in data if r["app"] == app and
                     r["protocol"] == proto]
            xs.append(ai + pi * width)
            bottoms.append(match[0] if match else None)
        bottom_acc = [0.0] * len(apps)
        for key, label, color in CATEGORIES:
            vals = [float(r[key]) if r else 0.0 for r in bottoms]
            ax.bar(xs, vals, width=width, bottom=bottom_acc, color=color,
                   label=label if pi == 0 else None, edgecolor="none")
            bottom_acc = [b + v for b, v in zip(bottom_acc, vals)]
    ax.set_xticks([i + 0.3 for i in range(len(apps))])
    ax.set_xticklabels(apps, rotation=45, ha="right")
    ax.set_ylabel("fraction of execution time")
    ax.set_title(f"Execution breakdown, {procs} processors "
                 "(bars per app: SB, TCC, SEQ, BulkSC)")
    ax.legend(loc="upper right", fontsize=8)
    fig.tight_layout()
    fig.savefig(out / f"exec_breakdown_{procs}.png", dpi=150)
    plt.close(fig)


def dirs_per_commit(rows, out):
    data = [r for r in rows if int(r["procs"]) == 64 and
            r["protocol"] == "ScalableBulk"]
    if not data:
        return
    apps = [r["app"] for r in data]
    write = [float(r["writeDirs"]) for r in data]
    read = [float(r["dirs"]) - float(r["writeDirs"]) for r in data]
    fig, ax = plt.subplots(figsize=(max(8, len(apps) * 0.8), 4))
    ax.bar(apps, write, label="Write Group", color="#ee6677")
    ax.bar(apps, read, bottom=write, label="Read Group", color="#4477aa")
    ax.set_ylabel("directories per chunk commit")
    ax.set_title("Directories accessed per commit (64p, ScalableBulk)")
    plt.setp(ax.get_xticklabels(), rotation=45, ha="right")
    ax.legend()
    fig.tight_layout()
    fig.savefig(out / "dirs_per_commit.png", dpi=150)
    plt.close(fig)


def commit_latency(rows, out):
    fig, ax = plt.subplots(figsize=(6, 4))
    for procs, offset in ((32, -0.2), (64, 0.2)):
        means = []
        for proto in PROTOCOLS:
            sel = [float(r["latMean"]) for r in rows
                   if r["protocol"] == proto and int(r["procs"]) == procs]
            means.append(sum(sel) / len(sel) if sel else 0.0)
        ax.bar([i + offset for i in range(len(PROTOCOLS))], means,
               width=0.4, label=f"{procs}p")
    ax.set_xticks(range(len(PROTOCOLS)))
    ax.set_xticklabels(PROTOCOLS)
    ax.set_ylabel("mean commit latency (cycles)")
    ax.set_yscale("log")
    ax.set_title("Commit latency by protocol (cf. paper Figure 13)")
    ax.legend()
    fig.tight_layout()
    fig.savefig(out / "commit_latency.png", dpi=150)
    plt.close(fig)


def queue_length(rows, out):
    data = defaultdict(dict)
    for r in rows:
        if int(r["procs"]) == 64 and r["protocol"] in ("TCC", "SEQ"):
            data[r["app"]][r["protocol"]] = float(r["queue"])
    if not data:
        return
    apps = sorted(data)
    fig, ax = plt.subplots(figsize=(max(8, len(apps) * 0.8), 4))
    xs = range(len(apps))
    ax.bar([x - 0.2 for x in xs],
           [data[a].get("TCC", 0.0) for a in apps], width=0.4,
           label="TCC", color="#ee6677")
    ax.bar([x + 0.2 for x in xs],
           [data[a].get("SEQ", 0.0) for a in apps], width=0.4,
           label="SEQ", color="#4477aa")
    ax.set_xticks(list(xs))
    ax.set_xticklabels(apps, rotation=45, ha="right")
    ax.set_ylabel("chunk queue length")
    ax.set_title("Chunk queue length, 64p (cf. paper Figures 16/17)")
    ax.legend()
    fig.tight_layout()
    fig.savefig(out / "queue_length.png", dpi=150)
    plt.close(fig)


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    rows = load(sys.argv[1])
    out = Path(sys.argv[2])
    out.mkdir(parents=True, exist_ok=True)
    exec_breakdown(rows, 32, out)
    exec_breakdown(rows, 64, out)
    dirs_per_commit(rows, out)
    commit_latency(rows, out)
    queue_length(rows, out)
    print(f"wrote plots to {out}/")


if __name__ == "__main__":
    main()
