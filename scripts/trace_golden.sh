#!/usr/bin/env bash
# Golden-trace smoke (see WORKLOADS.md): validates the committed scenario
# traces, replays each one, and diffs the per-tenant replay CSV against
# traces/GOLDEN_STATS.csv byte for byte. Scenario generation and replay
# are deterministic, so any diff is a behaviour change that must either be
# fixed or explicitly re-baselined with --update.
#
# Usage: scripts/trace_golden.sh [--update]
#   BUILD_DIR  build tree holding tools/sbulk-trace (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
TRACE="$BUILD_DIR/tools/sbulk-trace"
GOLDEN=traces/GOLDEN_STATS.csv

if [ ! -x "$TRACE" ]; then
    echo "error: $TRACE not built (set BUILD_DIR?)" >&2
    exit 2
fi

out=$(mktemp)
trap 'rm -f "$out"' EXIT

first=1
for t in traces/*.sbt; do
    # Strict end-to-end structural scan first: a corrupt golden must fail
    # loudly, not replay garbage.
    "$TRACE" validate "$t" >/dev/null
    if [ "$first" = 1 ]; then
        "$TRACE" replay "$t" --csv >>"$out"
        first=0
    else
        "$TRACE" replay "$t" --csv | tail -n +2 >>"$out"
    fi
done

if [ "${1:-}" = "--update" ]; then
    mv "$out" "$GOLDEN"
    trap - EXIT
    echo "re-baselined $GOLDEN"
    exit 0
fi

diff -u "$GOLDEN" "$out"

# A fault-injected replay (see ROBUSTNESS.md) must still commit every
# request: the recovery layer composes with trace-driven workloads.
clean=$("$TRACE" replay traces/kv-zipf.sbt --csv | sed -n 2p | cut -d, -f6)
faulted=$("$TRACE" replay traces/kv-zipf.sbt --csv \
    --faults "seed=3,drop=0.02,dup=0.01" | sed -n 2p | cut -d, -f6)
if [ "$clean" != "$faulted" ]; then
    echo "error: fault-injected replay committed $faulted of $clean" >&2
    exit 1
fi

echo "trace goldens OK (commits under faults: $faulted/$clean)"
