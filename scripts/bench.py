#!/usr/bin/env python3
"""Run the wall-clock perf harness and gate regressions.

Wraps bench/wallclock (built by the normal CMake build) and compares its
numbers against the committed baseline BENCH_simcore.json at the repo root:

    scripts/bench.py --build build            # run, print, no gate
    scripts/bench.py --build build --check    # fail if >25% regression
    scripts/bench.py --build build --update   # rewrite the baseline 'after'
    scripts/bench.py --build build --quick    # smoke mode (CI)

The gate is deliberately loose (25%) because absolute throughput is
machine-dependent; it catches structural regressions (an accidental
allocation or algorithmic slip on a hot path), not scheduler noise.
"""

import argparse
import json
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "BENCH_simcore.json"

# Metrics gated by --check: name -> direction (+1 higher is better,
# -1 lower is better).
GATED = {
    "simcore_events_per_sec": +1,
    "signature_mops_per_sec": +1,
    "torus_messages_per_sec": +1,
    "sweep_seconds_serial": -1,
}
TOLERANCE = 0.25


def find_binary(build_dir):
    path = pathlib.Path(build_dir) / "bench" / "wallclock"
    if not path.is_file():
        sys.exit(f"bench binary not found at {path}; build the repo first "
                 "(cmake --build <build-dir>)")
    return path


def run_bench(binary, quick, json_out):
    cmd = [str(binary), "--json", str(json_out)]
    if quick:
        cmd.append("--quick")
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
    with open(json_out) as f:
        return json.load(f)


def check(result, baseline_after):
    """Return a list of regression messages (empty = pass)."""
    failures = []
    for metric, direction in GATED.items():
        if metric not in result or metric not in baseline_after:
            continue
        got, ref = float(result[metric]), float(baseline_after[metric])
        if ref <= 0:
            continue
        if direction > 0 and got < ref * (1 - TOLERANCE):
            failures.append(
                f"{metric}: {got:.6g} is more than {TOLERANCE:.0%} below "
                f"baseline {ref:.6g}")
        if direction < 0 and got > ref * (1 + TOLERANCE):
            failures.append(
                f"{metric}: {got:.6g} is more than {TOLERANCE:.0%} above "
                f"baseline {ref:.6g}")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build", default="build",
                    help="CMake build directory (default: build)")
    ap.add_argument("--quick", action="store_true",
                    help="pass --quick to the harness (smoke sizes)")
    ap.add_argument("--check", action="store_true",
                    help="fail (exit 1) on a >25%% regression vs the "
                         "committed baseline's 'after' numbers")
    ap.add_argument("--update", action="store_true",
                    help="write this run's numbers into the baseline's "
                         "'after' block")
    ap.add_argument("--json", default=None,
                    help="also write the raw harness JSON here")
    args = ap.parse_args()

    binary = find_binary(args.build)
    json_out = pathlib.Path(args.json) if args.json \
        else pathlib.Path(args.build) / "bench_result.json"
    result = run_bench(binary, args.quick, json_out)

    print(f"{'metric':<28} {'this run':>14} {'baseline':>14}")
    baseline = json.loads(BASELINE.read_text()) if BASELINE.is_file() else {}
    after = baseline.get("after", {})
    for metric in GATED:
        got = result.get(metric, "-")
        ref = after.get(metric, "-")
        print(f"{metric:<28} {got!s:>14} {ref!s:>14}")

    if args.update:
        if not baseline:
            sys.exit(f"baseline {BASELINE} missing; cannot --update")
        for metric in GATED:
            if metric in result:
                baseline["after"][metric] = result[metric]
        before = baseline.get("before", {})
        speedup = baseline.setdefault("speedup", {})
        for metric, direction in GATED.items():
            if metric in before and metric in baseline["after"]:
                b, a = float(before[metric]), float(baseline["after"][metric])
                if a > 0 and b > 0:
                    key = "sweep_wall_clock" \
                        if metric == "sweep_seconds_serial" else metric
                    speedup[key] = round(b / a if direction < 0 else a / b, 2)
        BASELINE.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"updated {BASELINE}")

    if args.check:
        if args.quick:
            # Quick mode runs tiny problem sizes; numbers are noisy, so the
            # gate only verifies the harness runs and produces sane output.
            missing = [m for m in GATED if m not in result]
            if missing:
                sys.exit(f"quick run missing metrics: {missing}")
            print("quick check: harness ran, all metrics present")
            return
        failures = check(result, after)
        if failures:
            print("PERF REGRESSION:", file=sys.stderr)
            for f in failures:
                print(f"  {f}", file=sys.stderr)
            sys.exit(1)
        print(f"check passed (within {TOLERANCE:.0%} of baseline)")


if __name__ == "__main__":
    main()
