#!/usr/bin/env python3
"""Run the wall-clock perf harnesses and gate regressions.

Wraps bench/wallclock (built by the normal CMake build) and compares its
numbers against the committed baseline BENCH_simcore.json at the repo root:

    scripts/bench.py --build build            # run, print, no gate
    scripts/bench.py --build build --check    # fail if >25% regression
    scripts/bench.py --build build --update   # rewrite the baseline 'after'
    scripts/bench.py --build build --quick    # smoke mode (CI)

With --parallel-kernel the script instead wraps bench/parallel_kernel (the
sharded-PDES harness) and gates its commit throughput against
BENCH_parallel_kernel.json; --quick composes (256-tile smoke at --shards 8
only).

The gate is deliberately loose (25%) because absolute throughput is
machine-dependent; it catches structural regressions (an accidental
allocation or algorithmic slip on a hot path), not scheduler noise.
"""

import argparse
import json
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "BENCH_simcore.json"
PK_BASELINE = REPO_ROOT / "BENCH_parallel_kernel.json"

# Metrics gated by --check: name -> direction (+1 higher is better,
# -1 lower is better).
GATED = {
    "simcore_events_per_sec": +1,
    "signature_mops_per_sec": +1,
    "torus_messages_per_sec": +1,
    "sweep_seconds_serial": -1,
}
# Parallel-kernel harness gate (--parallel-kernel). Commit throughput is
# the structural signal; wall-clock speedups vary with host core count
# (the committed JSON records host_cpus) and are reported, not gated.
PK_GATED = {
    "serial_commits_per_sec": +1,
    "sharded8_commits_per_sec": +1,
    # Barrier-stall share of the sharded window loop (balanced map):
    # lower is better; a jump means the tree barrier or the lookahead
    # horizons regressed even if throughput hides it on a loaded host.
    "sharded8_barrier_stall_share": -1,
}
TOLERANCE = 0.25


def find_binary(build_dir, name):
    path = pathlib.Path(build_dir) / "bench" / name
    if not path.is_file():
        sys.exit(f"bench binary not found at {path}; build the repo first "
                 "(cmake --build <build-dir>)")
    return path


def run_bench(binary, quick, json_out):
    cmd = [str(binary), "--json", str(json_out)]
    if quick:
        cmd.append("--quick")
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
    with open(json_out) as f:
        return json.load(f)


def check(result, baseline_after):
    """Return a list of regression messages (empty = pass)."""
    failures = []
    for metric, direction in GATED.items():
        if metric not in result or metric not in baseline_after:
            continue
        got, ref = float(result[metric]), float(baseline_after[metric])
        if ref <= 0:
            continue
        if direction > 0 and got < ref * (1 - TOLERANCE):
            failures.append(
                f"{metric}: {got:.6g} is more than {TOLERANCE:.0%} below "
                f"baseline {ref:.6g}")
        if direction < 0 and got > ref * (1 + TOLERANCE):
            failures.append(
                f"{metric}: {got:.6g} is more than {TOLERANCE:.0%} above "
                f"baseline {ref:.6g}")
    return failures


def run_parallel_kernel(args):
    """Wrap bench/parallel_kernel; gate vs BENCH_parallel_kernel.json.

    The committed baseline is the harness's raw (flat) JSON, so metrics
    compare directly; --update rewrites the whole file from this run.
    """
    binary = find_binary(args.build, "parallel_kernel")
    json_out = pathlib.Path(args.json) if args.json \
        else pathlib.Path(args.build) / "parallel_kernel_result.json"
    cmd = [str(binary), "--json", str(json_out)]
    if args.quick:
        cmd.append("--quick")
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
    with open(json_out) as f:
        result = json.load(f)

    baseline = json.loads(PK_BASELINE.read_text()) \
        if PK_BASELINE.is_file() else {}
    print(f"{'metric':<32} {'this run':>14} {'baseline':>14}")
    for metric in PK_GATED:
        print(f"{metric:<32} {result.get(metric, '-')!s:>14} "
              f"{baseline.get(metric, '-')!s:>14}")

    if args.update:
        PK_BASELINE.write_text(json.dumps(result, indent=2) + "\n")
        print(f"updated {PK_BASELINE}")

    if args.check:
        missing = [m for m in PK_GATED if m not in result]
        if missing:
            sys.exit(f"parallel-kernel run missing metrics: {missing}")
        if args.quick:
            # Quick mode shrinks the workload; the committed baseline ran
            # full sizes, so only the harness's own invariants (identical
            # commit counts serial vs sharded — enforced by the binary
            # itself) are meaningful here.
            print("quick check: harness ran, all metrics present")
            return
        pk_failures = []
        for metric, direction in PK_GATED.items():
            if metric not in baseline:
                continue
            got, ref = float(result[metric]), float(baseline[metric])
            if ref <= 0:
                continue
            if direction > 0 and got < ref * (1 - TOLERANCE):
                pk_failures.append(
                    f"{metric}: {got:.6g} is more than {TOLERANCE:.0%} "
                    f"below baseline {ref:.6g}")
            if direction < 0 and got > ref * (1 + TOLERANCE):
                pk_failures.append(
                    f"{metric}: {got:.6g} is more than {TOLERANCE:.0%} "
                    f"above baseline {ref:.6g}")
        if pk_failures:
            print("PERF REGRESSION:", file=sys.stderr)
            for f in pk_failures:
                print(f"  {f}", file=sys.stderr)
            sys.exit(1)
        print(f"check passed (within {TOLERANCE:.0%} of baseline)")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build", default="build",
                    help="CMake build directory (default: build)")
    ap.add_argument("--quick", action="store_true",
                    help="pass --quick to the harness (smoke sizes)")
    ap.add_argument("--check", action="store_true",
                    help="fail (exit 1) on a >25%% regression vs the "
                         "committed baseline's 'after' numbers")
    ap.add_argument("--update", action="store_true",
                    help="write this run's numbers into the baseline's "
                         "'after' block")
    ap.add_argument("--json", default=None,
                    help="also write the raw harness JSON here")
    ap.add_argument("--parallel-kernel", action="store_true",
                    help="wrap bench/parallel_kernel instead of "
                         "bench/wallclock (gates commit throughput vs "
                         "BENCH_parallel_kernel.json)")
    args = ap.parse_args()

    if args.parallel_kernel:
        return run_parallel_kernel(args)

    binary = find_binary(args.build, "wallclock")
    json_out = pathlib.Path(args.json) if args.json \
        else pathlib.Path(args.build) / "bench_result.json"
    result = run_bench(binary, args.quick, json_out)

    print(f"{'metric':<28} {'this run':>14} {'baseline':>14}")
    baseline = json.loads(BASELINE.read_text()) if BASELINE.is_file() else {}
    after = baseline.get("after", {})
    for metric in GATED:
        got = result.get(metric, "-")
        ref = after.get(metric, "-")
        print(f"{metric:<28} {got!s:>14} {ref!s:>14}")

    if args.update:
        if not baseline:
            sys.exit(f"baseline {BASELINE} missing; cannot --update")
        for metric in GATED:
            if metric in result:
                baseline["after"][metric] = result[metric]
        before = baseline.get("before", {})
        speedup = baseline.setdefault("speedup", {})
        for metric, direction in GATED.items():
            if metric in before and metric in baseline["after"]:
                b, a = float(before[metric]), float(baseline["after"][metric])
                if a > 0 and b > 0:
                    key = "sweep_wall_clock" \
                        if metric == "sweep_seconds_serial" else metric
                    speedup[key] = round(b / a if direction < 0 else a / b, 2)
        BASELINE.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"updated {BASELINE}")

    if args.check:
        if args.quick:
            # Quick mode runs tiny problem sizes; numbers are noisy, so the
            # gate only verifies the harness runs and produces sane output.
            missing = [m for m in GATED if m not in result]
            if missing:
                sys.exit(f"quick run missing metrics: {missing}")
            print("quick check: harness ran, all metrics present")
            return
        failures = check(result, after)
        if failures:
            print("PERF REGRESSION:", file=sys.stderr)
            for f in failures:
                print(f"  {f}", file=sys.stderr)
            sys.exit(1)
        print(f"check passed (within {TOLERANCE:.0%} of baseline)")


if __name__ == "__main__":
    main()
